"""Recovery manager: sealed checkpoints, WAL replay, replica failover.

One manager per campaign, owning the durability state of every logical
shard (worker id): its write-ahead log, its latest sealed checkpoint,
its replication link, and the acknowledged-mutation history the shadow
oracle audits against.  The campaign drives it at four points:

* ``on_dispatch`` — a mutating request reaches a worker: write-ahead
  append (called from :meth:`repro.fleet.worker.EnclaveWorker.submit`).
* ``on_served`` — the ack: the WAL entry commits, joins the audit
  history, and ships to the replica.
* ``on_crash`` / ``on_restart`` — loss accounting at the crash, then
  unseal + restore + replay when the supervisor reboots the slot.
* ``tick`` — periodic sealed checkpoints (only of idle workers) and
  budgeted replica apply.

Recovery modes, in increasing durability::

    restart-fresh   accounting only: every crash loses all acked writes
    snapshot        sealed checkpoints; crashes lose the WAL tail
    snapshot+wal    checkpoints + committed-WAL replay; RPO = 0
    replica         snapshot+wal locally, plus a warm standby promoted
                    when the supervisor declares the primary dead

All costs are honest: unseal/seal cycles are priced by the
:class:`repro.sgx.SealingModel` and charged to the worker's enclave
clock; restore and replay run through the worker's real VM; the ticks
they take stretch the supervisor's startup window, which is what the RTO
numbers report.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.sgx import SealError, SealingService
from repro.recovery import audit as audit_mod
from repro.recovery.checkpoint import (
    CheckpointStore,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.recovery.replica import ReplicaLink
from repro.recovery.wal import WriteAheadLog

RESTART_FRESH = "restart-fresh"
SNAPSHOT = "snapshot"
SNAPSHOT_WAL = "snapshot+wal"
REPLICA = "replica"
MODES = (RESTART_FRESH, SNAPSHOT, SNAPSHOT_WAL, REPLICA)


class ShardState:
    """Durability bookkeeping for one logical shard."""

    __slots__ = ("wal", "history", "ckpt_seq", "last_ckpt_tick", "crash_at",
                 "lost_events", "rtos", "checkpoints", "restores", "replays",
                 "recovery_failures", "audit_result")

    def __init__(self) -> None:
        self.wal = WriteAheadLog()
        #: Acknowledged mutations in ack order — the oracle's script.
        self.history: List[Tuple[int, bytes]] = []
        self.ckpt_seq = 0            # WAL horizon of the sealed checkpoint
        self.last_ckpt_tick = 0
        self.crash_at: Optional[int] = None
        self.lost_events: List[Tuple[int, int]] = []   # (tick, acked lost)
        self.rtos: List[int] = []
        self.checkpoints = 0
        self.restores = 0            # snapshot records restored
        self.replays = 0             # WAL entries replayed
        self.recovery_failures = 0
        self.audit_result: Optional[Dict] = None

    @property
    def lost_total(self) -> int:
        return sum(lost for _, lost in self.lost_events)

    @property
    def lost_max(self) -> int:
        return max((lost for _, lost in self.lost_events), default=0)


class RecoveryManager:
    """Owns shard durability; glues sealing, WAL, and replicas to the fleet."""

    def __init__(self, mode: str, app, app_name: str, tick_cycles: int,
                 checkpoint_interval: int, worker_factory,
                 sealing: Optional[SealingService] = None,
                 audit: bool = True, telemetry=None, forensics=None):
        if mode not in MODES:
            raise ValueError(f"unknown recovery mode {mode!r}; "
                             f"expected one of {MODES}")
        self.mode = mode
        self.app = app                    # workloads.apps module
        self.app_name = app_name
        self.tick_cycles = tick_cycles
        self.checkpoint_interval = checkpoint_interval
        self.worker_factory = worker_factory
        self.sealing = sealing or SealingService()
        self.audit_enabled = audit
        self.telemetry = telemetry \
            if (telemetry is not None and telemetry.enabled) else None
        self.forensics = forensics \
            if (forensics is not None and forensics.enabled) else None
        self.snapshots = mode in (SNAPSHOT, SNAPSHOT_WAL, REPLICA)
        self.wal_replay = mode in (SNAPSHOT_WAL, REPLICA)
        self.replicated = mode == REPLICA
        self.store = CheckpointStore()
        self.shards: Dict[int, ShardState] = {}
        self.links: Dict[int, ReplicaLink] = {}
        self.promotions = 0

    # ------------------------------------------------------------------
    def _identity(self, wid: int) -> str:
        return f"{self.app_name}:shard{wid}"

    def _shard(self, wid: int) -> ShardState:
        shard = self.shards.get(wid)
        if shard is None:
            shard = self.shards[wid] = ShardState()
        return shard

    def _ticks(self, cycles: int) -> int:
        return -(-max(0, cycles) // self.tick_cycles)

    def _event(self, kind: str, wid: int, now: int, **detail) -> None:
        if self.telemetry is not None:
            self.telemetry.fleet_event(f"recovery_{kind}", wid, now)
        if self.forensics is not None:
            self.forensics.fleet_event(f"recovery_{kind}", now, wid=wid,
                                       **detail)

    # ------------------------------------------------------------------
    def attach(self, worker) -> None:
        """Wire a serving worker into the manager (WAL + dedup hooks)."""
        worker.mutates = self.app.is_mutating
        worker.recovery = self
        self._shard(worker.wid)
        if self.replicated and worker.wid not in self.links:
            standby = self.worker_factory(worker.wid)
            standby.mutates = self.app.is_mutating
            self.links[worker.wid] = ReplicaLink(worker.wid, standby)

    # -- WAL protocol ---------------------------------------------------
    def on_dispatch(self, wid: int, rid: int, payload: bytes) -> None:
        self._shard(wid).wal.append(rid, payload)

    def on_served(self, wid: int, request, now: int) -> None:
        """A request went terminal as served; commit if it was a logged
        mutation (deduped duplicates were already committed)."""
        if not self.app.is_mutating(request.payload):
            return
        shard = self._shard(wid)
        record = shard.wal.commit(request.rid)
        if record is None:
            return
        shard.history.append((request.rid, request.payload))
        link = self.links.get(wid)
        if link is not None and not link.promoted:
            link.ship(record)

    # -- crash / restart ------------------------------------------------
    def on_crash(self, wid: int, now: int, dead: bool) -> int:
        """Account the acked writes this crash destroyed; returns the
        count (the per-crash RPO in requests)."""
        shard = self._shard(wid)
        if self.wal_replay:
            lost = 0
            shard.wal.drop_uncommitted()
        else:
            lost = sum(1 for r in shard.wal.records if r.committed)
            shard.wal.clear()
        shard.lost_events.append((now, lost))
        if shard.crash_at is None:
            shard.crash_at = now
        self._event("state_loss", wid, now, lost_acked=lost, dead=dead)
        return lost

    def on_restart(self, worker, now: int,
                   startup_ticks: int) -> Tuple[int, int]:
        """Recover a freshly booted incarnation from sealed checkpoint +
        WAL tail; returns ``(extra_start_ticks, rto_ticks)``."""
        wid = worker.wid
        shard = self._shard(wid)
        vm = worker.vm
        start_cycles = vm.enclave.cycles()
        restored_through = 0
        if self.snapshots:
            restored_through = self._restore_checkpoint(worker, shard, now)
        if self.wal_replay:
            for record in shard.wal.committed_after(restored_through):
                try:
                    worker.drive_control(record.payload)
                except (ReproError, RuntimeError):
                    shard.recovery_failures += 1
                    self._event("replay_failed", wid, now, seq=record.seq)
                    continue
                worker.applied_rids.add(record.rid)
                shard.replays += 1
        extra_ticks = self._ticks(vm.enclave.cycles() - start_cycles)
        rto = 0
        if shard.crash_at is not None:
            rto = (now + startup_ticks + extra_ticks) - shard.crash_at
            shard.rtos.append(rto)
            shard.crash_at = None
        self._event("restored", wid, now, extra_ticks=extra_ticks,
                    rto_ticks=rto, replayed=shard.replays)
        return extra_ticks, rto

    def _restore_checkpoint(self, worker, shard: ShardState,
                            now: int) -> int:
        """Unseal + restore the latest checkpoint; returns the WAL
        horizon it covers (0 when there is none or it is rejected)."""
        wid = worker.wid
        identity = self._identity(wid)
        blob = self.store.latest(identity)
        if blob is None:
            return 0
        try:
            payload, cycles = self.sealing.unseal(identity, blob)
        except SealError as err:
            # Stale or corrupt blob: refuse it and fall back to the WAL
            # tail alone — losing freshness silently is the one thing a
            # rollback-protected store must never do.
            shard.recovery_failures += 1
            self._event("unseal_rejected", wid, now,
                        reason=type(err).__name__)
            return 0
        worker.vm.charge(cycles)
        try:
            _, wal_seq, records = decode_checkpoint(payload)
            for record in records:
                worker.drive_control(self.app.restore_request(record))
            shard.restores += len(records)
        except (ReproError, ValueError, RuntimeError) as err:
            shard.recovery_failures += 1
            self._event("restore_failed", wid, now,
                        reason=type(err).__name__)
            return 0
        return wal_seq

    # -- failover -------------------------------------------------------
    def promote(self, wid: int, now: int, balancer,
                startup_ticks: int) -> Optional[Tuple[object, int, int]]:
        """The supervisor declared ``wid`` dead; hand its slot to the
        warm standby.  Returns ``(worker, extra_ticks, rto_ticks)``, or
        None when no (unpromoted) replica exists for the shard."""
        link = self.links.get(wid)
        if link is None or link.promoted:
            return None
        shard = self._shard(wid)
        standby, drain_cycles = link.promote()
        standby.recovery = self
        balancer.replace_worker(wid, standby)
        extra_ticks = self._ticks(drain_cycles)
        rto = 0
        if shard.crash_at is not None:
            rto = (now + startup_ticks + extra_ticks) - shard.crash_at
            shard.rtos.append(rto)
            shard.crash_at = None
        self.promotions += 1
        self._event("promoted", wid, now, extra_ticks=extra_ticks,
                    rto_ticks=rto, drained=link.applied)
        return standby, extra_ticks, rto

    # -- periodic work --------------------------------------------------
    def tick(self, now: int, workers: Dict[int, object],
             supervisor) -> None:
        """Budgeted replica apply, then checkpoint any idle worker whose
        interval elapsed."""
        for wid in sorted(self.links):
            link = self.links[wid]
            if not link.promoted:
                link.apply_pending(cycle_budget=self.tick_cycles)
        if not self.snapshots:
            return
        for wid in sorted(self.shards):
            shard = self.shards[wid]
            if now - shard.last_ckpt_tick < self.checkpoint_interval:
                continue
            worker = workers.get(wid)
            if worker is None or not supervisor.dispatchable(wid):
                continue
            if (worker.inflight is not None or worker._pause_ticks > 0
                    or worker._hang_ticks > 0):
                continue
            self._checkpoint(worker, shard, now)

    def _checkpoint(self, worker, shard: ShardState, now: int) -> None:
        wid = worker.wid
        try:
            messages, drive_cycles = worker.drive_control(
                self.app.snapshot_request())
            records = self.app.parse_snapshot(messages)
        except (ReproError, ValueError, RuntimeError) as err:
            shard.recovery_failures += 1
            self._event("snapshot_failed", wid, now,
                        reason=type(err).__name__)
            shard.last_ckpt_tick = now
            return
        horizon = max(shard.ckpt_seq, shard.wal.last_committed_seq())
        payload = encode_checkpoint(self.app_name, horizon, records)
        blob, seal_cycles = self.sealing.seal(self._identity(wid), payload)
        self.store.save(self._identity(wid), blob, horizon, now)
        worker.vm.charge(seal_cycles)
        worker.pause(self._ticks(drive_cycles + seal_cycles))
        shard.wal.truncate_through(horizon)
        shard.ckpt_seq = horizon
        shard.last_ckpt_tick = now
        shard.checkpoints += 1
        self._event("checkpoint", wid, now, records=len(records),
                    sealed_bytes=len(payload), counter=blob.counter)

    # -- audit + summary ------------------------------------------------
    def _materialize(self, wid: int):
        """Rebuild a shard's recoverable state into a spare enclave —
        what the next restart *would* recover from checkpoint + WAL.
        Returns None when nothing durable survives."""
        shard = self._shard(wid)
        spare = self.worker_factory(wid)
        horizon = 0
        any_state = False
        if self.snapshots:
            blob = self.store.latest(self._identity(wid))
            if blob is not None:
                # The audit reads the store directly; freshness and
                # integrity checks are recovery-path concerns, exercised
                # by on_restart.
                try:
                    _, horizon, records = decode_checkpoint(blob.payload)
                    for record in records:
                        spare.drive_control(self.app.restore_request(record))
                    any_state = True
                except (ReproError, ValueError, RuntimeError):
                    return None
        if self.wal_replay:
            for record in shard.wal.committed_after(horizon):
                try:
                    spare.drive_control(record.payload)
                    any_state = True
                except (ReproError, RuntimeError):
                    return None
        return spare if any_state else None

    def finalize(self, workers: Dict[int, object],
                 supervisor, now: int) -> Dict[str, object]:
        """Run the end-of-campaign consistency audit and summarise."""
        if self.audit_enabled:
            for wid in sorted(self.shards):
                shard = self.shards[wid]
                worker = workers.get(wid)
                # A shard that ended the campaign crashed, mid-restart, or
                # dead has no live state; audit what its durable artifacts
                # would recover to instead — durability, not uptime, is
                # what RPO promises.
                live = (worker is not None and worker.last_error is None
                        and supervisor.status(wid) != "dead")
                materialized = False
                if not live:
                    worker = self._materialize(wid)
                    materialized = worker is not None
                shard.audit_result = audit_mod.audit_shard(
                    wid, worker, self.app, shard.history,
                    self.worker_factory)
                if materialized:
                    shard.audit_result["materialized"] = True
        return self.summary()

    def summary(self) -> Dict[str, object]:
        shards = self.shards
        rtos = [t for s in shards.values() for t in s.rtos]
        out: Dict[str, object] = {
            "mode": self.mode,
            "rpo": {
                "lost_acked_total": sum(s.lost_total for s in shards.values()),
                "lost_acked_max": max((s.lost_max for s in shards.values()),
                                      default=0),
                "crashes_accounted": sum(len(s.lost_events)
                                         for s in shards.values()),
            },
            "rto": {
                "count": len(rtos),
                "mean_ticks": (sum(rtos) / len(rtos)) if rtos else 0.0,
                "max_ticks": max(rtos, default=0),
            },
            "checkpoints": {
                "count": sum(s.checkpoints for s in shards.values()),
                "restores": sum(s.restores for s in shards.values()),
                "replayed": sum(s.replays for s in shards.values()),
                "failures": sum(s.recovery_failures for s in shards.values()),
            },
            "sealing": self.sealing.stats(),
            "wal": {
                "appended": sum(s.wal.appended for s in shards.values()),
                "committed": sum(s.wal.commits for s in shards.values()),
                "truncated": sum(s.wal.truncated for s in shards.values()),
            },
        }
        if self.replicated:
            out["replica"] = {
                "promotions": self.promotions,
                "links": {wid: link.stats()
                          for wid, link in sorted(self.links.items())},
            }
        if self.audit_enabled:
            per_shard = {wid: shards[wid].audit_result
                         for wid in sorted(shards)}
            out["audit"] = {
                "clean": all(r is not None and r.get("clean")
                             for r in per_shard.values()),
                "shards": per_shard,
            }
        return out
