"""Checkpoint encoding + the per-fleet sealed checkpoint store.

A checkpoint is the app's snapshot records (as dumped by its magic-guarded
SNAPSHOT opcode) plus the WAL horizon they cover, in a canonical byte
encoding that the :class:`repro.sgx.SealingService` seals.  The store
keeps only the latest blob per identity — exactly what a supervisor
would persist outside the EPC — and remembers the tick it was taken at
so checkpoint cadence is observable.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.sgx import SealedBlob

MAGIC = b"SGXCKPT1"


def encode_checkpoint(app: str, wal_seq: int,
                      records: List[bytes]) -> bytes:
    """Canonical checkpoint payload: app tag, WAL horizon, records."""
    tag = app.encode("utf-8")
    head = MAGIC + struct.pack("<H", len(tag)) + tag
    head += struct.pack("<QI", wal_seq, len(records))
    body = b"".join(struct.pack("<I", len(r)) + r for r in records)
    return head + body


def decode_checkpoint(payload: bytes) -> Tuple[str, int, List[bytes]]:
    """Inverse of :func:`encode_checkpoint`."""
    if payload[:8] != MAGIC:
        raise ValueError("not a checkpoint payload")
    (taglen,) = struct.unpack_from("<H", payload, 8)
    offset = 10
    app = payload[offset:offset + taglen].decode("utf-8")
    offset += taglen
    wal_seq, count = struct.unpack_from("<QI", payload, offset)
    offset += 12
    records = []
    for _ in range(count):
        (rlen,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        record = payload[offset:offset + rlen]
        if len(record) != rlen:
            raise ValueError("truncated checkpoint record")
        offset += rlen
        records.append(record)
    return app, wal_seq, records


class CheckpointStore:
    """Latest sealed checkpoint per enclave identity (untrusted storage)."""

    def __init__(self):
        self._blobs: Dict[str, SealedBlob] = {}
        self._wal_seq: Dict[str, int] = {}
        self._tick: Dict[str, int] = {}
        self.saves = 0

    def save(self, identity: str, blob: SealedBlob, wal_seq: int,
             tick: int) -> None:
        self._blobs[identity] = blob
        self._wal_seq[identity] = wal_seq
        self._tick[identity] = tick
        self.saves += 1

    def latest(self, identity: str) -> Optional[SealedBlob]:
        return self._blobs.get(identity)

    def wal_seq(self, identity: str) -> int:
        return self._wal_seq.get(identity, 0)

    def tick(self, identity: str) -> Optional[int]:
        return self._tick.get(identity)
