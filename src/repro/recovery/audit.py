"""Post-recovery consistency audit against a shadow oracle.

The oracle is a fresh enclave of the same build (same compiled module,
scheme, policy) that replays *only the acknowledged mutations* of a
shard, in ack order.  Because the recovery-enabled apps keep committed
state a pure function of acknowledged request bytes (request buffers are
zero-filled per receive; vulnerable copies stage before committing), the
oracle's snapshot is byte-for-byte what a lossless recovery must hold.
Diffing canonicalised (sorted) snapshot records against the surviving
worker therefore measures exactly the acknowledged writes a recovery
mode lost or corrupted.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError


def snapshot_records(worker, app) -> List[bytes]:
    """Drive the app's SNAPSHOT opcode on ``worker``; returns records."""
    messages, _ = worker.drive_control(app.snapshot_request())
    return app.parse_snapshot(messages)


def replay_history(worker, history: List[Tuple[int, bytes]]) -> int:
    """Replay acknowledged mutations (ack order) into a fresh worker."""
    for rid, payload in history:
        worker.drive_control(payload)
    return len(history)


def diff_records(expected: List[bytes], got: List[bytes]) -> Dict[str, int]:
    """Multiset diff of canonicalised snapshot records."""
    want = Counter(expected)
    have = Counter(got)
    return {
        "expected": len(expected),
        "recovered": len(got),
        "missing": sum((want - have).values()),
        "extra": sum((have - want).values()),
    }


def audit_shard(wid: int, worker, app, history: List[Tuple[int, bytes]],
                worker_factory) -> Dict[str, object]:
    """Diff ``worker``'s live state against the shadow oracle.

    Returns a dict with the record counts and a ``clean`` verdict; if the
    worker (or the oracle replay) cannot be driven — e.g. the shard died
    and was never revived — the loss is total and reported as such.
    """
    oracle = worker_factory(wid)
    try:
        replay_history(oracle, history)
        expected = snapshot_records(oracle, app)
    except (ReproError, ValueError, RuntimeError) as err:
        return {"error": f"oracle replay failed: {type(err).__name__}",
                "clean": False}
    if worker is None:
        result = diff_records(expected, [])
        result["clean"] = not expected
        result["unrecoverable"] = True
        return result
    try:
        got = snapshot_records(worker, app)
    except (ReproError, ValueError, RuntimeError) as err:
        result = diff_records(expected, [])
        result["error"] = f"snapshot failed: {type(err).__name__}"
        result["clean"] = False
        return result
    result = diff_records(expected, got)
    result["clean"] = (result["missing"] == 0 and result["extra"] == 0)
    return result
