"""Stateful recovery for the enclave fleet.

Sealed checkpoints (:mod:`repro.recovery.checkpoint` over
:mod:`repro.sgx.sealing`), a deterministic write-ahead log of mutating
requests (:mod:`repro.recovery.wal`), replica failover with WAL shipping
(:mod:`repro.recovery.replica`), and a shadow-oracle consistency audit
(:mod:`repro.recovery.audit`), orchestrated per campaign by
:class:`repro.recovery.manager.RecoveryManager`.
"""

from repro.recovery.audit import audit_shard, diff_records, snapshot_records
from repro.recovery.checkpoint import (
    CheckpointStore,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.recovery.manager import (
    MODES,
    REPLICA,
    RESTART_FRESH,
    RecoveryManager,
    SNAPSHOT,
    SNAPSHOT_WAL,
    ShardState,
)
from repro.recovery.replica import ReplicaLink
from repro.recovery.wal import WALRecord, WriteAheadLog

__all__ = [
    "MODES",
    "RESTART_FRESH",
    "SNAPSHOT",
    "SNAPSHOT_WAL",
    "REPLICA",
    "RecoveryManager",
    "ShardState",
    "ReplicaLink",
    "WALRecord",
    "WriteAheadLog",
    "CheckpointStore",
    "encode_checkpoint",
    "decode_checkpoint",
    "audit_shard",
    "diff_records",
    "snapshot_records",
]
