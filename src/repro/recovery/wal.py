"""Deterministic write-ahead log of mutating requests.

One log per logical shard (worker id).  The protocol follows the classic
two-point discipline:

* **append at dispatch** — before the worker's VM sees a mutating
  request, its (request id, payload) is appended uncommitted.  If the
  worker crashes mid-request the entry stays uncommitted and is *not*
  replayed; the balancer's retry path re-delivers it instead, so the
  mutation is applied exactly once.
* **commit at ack** — when the balancer sees the served outcome the
  entry is marked committed.  Committed entries are exactly the
  acknowledged writes, i.e. the set a recovery must reproduce for
  RPO = 0.

Recovery replays ``committed_after(checkpoint_seq)`` on top of the
unsealed snapshot.  Checkpoints call :meth:`WriteAheadLog.truncate_through`
to drop entries the snapshot has made durable.  Entries encode/decode to
a canonical byte form for replica shipping and for inclusion in sealed
blobs, so two seeded runs produce byte-identical logs.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple


class WALRecord:
    """One logged mutation."""

    __slots__ = ("seq", "rid", "payload", "committed")

    def __init__(self, seq: int, rid: int, payload: bytes,
                 committed: bool = False):
        self.seq = seq
        self.rid = rid
        self.payload = payload
        self.committed = committed

    def encode(self) -> bytes:
        return struct.pack("<QQI", self.seq, self.rid,
                           len(self.payload)) + self.payload

    @staticmethod
    def decode(data: bytes) -> "WALRecord":
        if len(data) < 20:
            raise ValueError(f"short WAL record: {len(data)} bytes")
        seq, rid, plen = struct.unpack_from("<QQI", data, 0)
        payload = data[20:20 + plen]
        if len(payload) != plen:
            raise ValueError("truncated WAL record payload")
        return WALRecord(seq, rid, payload, committed=True)

    def __repr__(self) -> str:
        flag = "C" if self.committed else "U"
        return f"<WAL #{self.seq} rid={self.rid} {flag} {len(self.payload)}B>"


class WriteAheadLog:
    """Append-only mutation log with commit marks and truncation."""

    def __init__(self):
        self.records: List[WALRecord] = []
        self.next_seq = 1
        self.appended = 0
        self.commits = 0
        self.truncated = 0

    def append(self, rid: int, payload: bytes) -> int:
        """Log a mutating request at dispatch time; returns its seq."""
        record = WALRecord(self.next_seq, rid, payload)
        self.next_seq += 1
        self.records.append(record)
        self.appended += 1
        return record.seq

    def commit(self, rid: int) -> Optional[WALRecord]:
        """Mark the latest uncommitted entry for ``rid`` committed (the
        ack arrived).  Returns the record, or None when the entry was
        never logged here (e.g. a deduped duplicate)."""
        for record in reversed(self.records):
            if record.rid == rid and not record.committed:
                record.committed = True
                self.commits += 1
                return record
        return None

    def committed_after(self, seq: int) -> List[WALRecord]:
        """Committed entries newer than ``seq`` — the replay tail."""
        return [r for r in self.records if r.committed and r.seq > seq]

    def last_committed_seq(self) -> int:
        seqs = [r.seq for r in self.records if r.committed]
        return max(seqs) if seqs else 0

    def truncate_through(self, seq: int) -> int:
        """Drop entries with ``seq`` at or below the checkpoint horizon
        (the sealed snapshot now carries them)."""
        keep = [r for r in self.records if r.seq > seq]
        dropped = len(self.records) - len(keep)
        self.records = keep
        self.truncated += dropped
        return dropped

    def drop_uncommitted(self) -> int:
        """Discard uncommitted entries (crash before ack: the balancer
        retry path owns those requests now)."""
        keep = [r for r in self.records if r.committed]
        dropped = len(self.records) - len(keep)
        self.records = keep
        return dropped

    def clear(self) -> None:
        self.records = []

    def size_bytes(self) -> int:
        return sum(20 + len(r.payload) for r in self.records)

    def encode_committed(self, after_seq: int = 0) -> bytes:
        """Canonical byte form of the committed tail (for sealing)."""
        tail = self.committed_after(after_seq)
        return struct.pack("<I", len(tail)) + b"".join(
            r.encode() for r in tail)

    @staticmethod
    def decode_records(data: bytes) -> Tuple[List[WALRecord], int]:
        """Inverse of :meth:`encode_committed`; returns (records, used)."""
        (count,) = struct.unpack_from("<I", data, 0)
        used = 4
        records = []
        for _ in range(count):
            record = WALRecord.decode(data[used:])
            used += 20 + len(record.payload)
            records.append(record)
        return records, used
