"""Primary/replica pairing: WAL shipping and failover promotion.

Each shard's primary gets a warm replica — a second enclave of the same
build that is *not* in the balancer's rotation.  Every committed WAL
entry is shipped over a dedicated :class:`repro.workloads.NetworkSim`
link at ack time; the replica drains the link during the campaign tick,
applying entries through the same VM opcodes a WAL replay uses, under a
per-tick cycle budget so replication work is paced like everything else.

When the supervisor declares a primary dead (crash-loop), the manager
promotes: the replica drains whatever is still on the wire, takes over
the shard's worker id in the balancer rotation, and the supervisor
revives the slot with the drain cost added to its startup time.  RPO is
zero as long as shipping is synchronous with acks, which it is here;
RTO is the promotion drain plus the supervisor's startup ticks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.workloads import NetworkSim

from repro.recovery.wal import WALRecord

#: Upper bound on one shipped WAL frame (entries are single requests).
_FRAME_MAX = 1 << 16


class ReplicaLink:
    """One shard's replication channel + standby enclave."""

    def __init__(self, wid: int, worker):
        self.wid = wid
        self.worker = worker              # standby EnclaveWorker
        self.net = NetworkSim()
        self.conn = self.net.connect()
        self.shipped = 0
        self.shipped_bytes = 0
        self.applied = 0
        self.apply_cycles = 0
        self.promoted = False

    def ship(self, record: WALRecord) -> None:
        """Queue one committed entry on the replication link (ack time)."""
        frame = record.encode()
        self.net.push(self.conn, frame)
        self.shipped += 1
        self.shipped_bytes += len(frame)

    def pending(self) -> int:
        return self.net.pending(self.conn)

    def _pop(self) -> WALRecord:
        frame = self.net.recv(self.conn, _FRAME_MAX)
        return WALRecord.decode(frame)

    def apply_pending(self, cycle_budget: Optional[int] = None) -> int:
        """Drain shipped entries into the standby VM; returns cycles
        spent.  With a budget, stops once it is exceeded (remaining
        entries wait for the next tick — replication lag)."""
        spent = 0
        while self.pending() > 0:
            if cycle_budget is not None and spent >= cycle_budget:
                break
            record = self._pop()
            _, cycles = self.worker.drive_control(record.payload)
            self.worker.applied_rids.add(record.rid)
            self.applied += 1
            spent += cycles
        self.apply_cycles += spent
        return spent

    def promote(self) -> Tuple[object, int]:
        """Failover: drain the remaining backlog and hand the standby
        over; returns ``(worker, drain_cycles)``."""
        drain_cycles = self.apply_pending(cycle_budget=None)
        self.promoted = True
        return self.worker, drain_cycles

    def stats(self) -> dict:
        return {
            "shipped": self.shipped,
            "shipped_bytes": self.shipped_bytes,
            "applied": self.applied,
            "lag": self.pending(),
            "apply_cycles": self.apply_cycles,
            "promoted": self.promoted,
        }
