"""Exception taxonomy for the SGXBounds reproduction.

Every fault the simulated machine can raise derives from :class:`ReproError`
so callers can distinguish "the simulated program misbehaved" from genuine
bugs in the simulator itself (which raise ordinary Python exceptions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the simulated machine."""


class SegmentationFault(ReproError):
    """Access to unmapped or permission-protected simulated memory."""

    def __init__(self, address: int, size: int = 1, kind: str = "access"):
        self.address = address
        self.size = size
        self.kind = kind
        super().__init__(f"segmentation fault: {kind} of {size} byte(s) at 0x{address:08x}")


class GuardPageFault(SegmentationFault):
    """Access landed on a guard (unaddressable) page.

    SGXBounds marks the last 4K page of the enclave unaddressable so that
    hoisted loop checks stay sound under pointer over/underflow (paper §4.4).
    """

    def __init__(self, address: int, size: int = 1):
        super().__init__(address, size, kind="guard-page access")


class BoundsViolation(ReproError):
    """An instrumented bounds check failed (spatial memory-safety violation).

    Carries structured context so the harness can report *what* faulted —
    the address and object bounds, the access direction and size, the
    MiniC function that executed the access, and (once a
    :class:`~repro.vm.scheme.SchemeRuntime` has applied its violation
    policy) the policy and its outcome.  ``context()`` returns everything
    as a plain dict for reports and logs.
    """

    def __init__(self, scheme: str, address: int, lower: int, upper: int,
                 size: int = 1, what: str = "", access: str = "",
                 function: str = ""):
        self.scheme = scheme
        self.address = address
        self.lower = lower
        self.upper = upper
        self.size = size
        self.what = what
        self.access = access          # "read" / "write" when known
        self.function = function      # MiniC function containing the access
        self.policy: str = ""         # violation policy in force, once applied
        self.outcome: str = ""        # what the policy did about it
        detail = f" ({what})" if what else ""
        super().__init__(
            f"[{scheme}] out-of-bounds {size}-byte access at 0x{address:08x}, "
            f"object bounds [0x{lower:08x}, 0x{upper:08x}){detail}"
        )

    def context(self) -> dict:
        """Structured rendering of the violation for reports."""
        return {
            "scheme": self.scheme,
            "address": self.address,
            "lower": self.lower,
            "upper": self.upper,
            "size": self.size,
            "access": self.access,
            "function": self.function,
            "what": self.what,
            "policy": self.policy,
            "outcome": self.outcome,
        }


class RequestAborted(ReproError):
    """A violation under the ``drop-request`` policy.

    Raised by :meth:`repro.vm.scheme.SchemeRuntime.handle_violation` in
    place of the violation itself; the VM catches it, rolls the faulting
    thread back to its last request checkpoint, and keeps the server
    alive.  If no checkpoint exists (the violation happened outside
    request handling) the underlying violation is re-raised fail-stop.
    """

    def __init__(self, violation: Exception):
        self.violation = violation
        super().__init__(f"request aborted: {violation}")


class DoubleFree(ReproError):
    """free() called on a pointer that is not currently allocated."""

    def __init__(self, address: int):
        self.address = address
        super().__init__(f"double/invalid free of 0x{address:08x}")


class OutOfMemory(ReproError):
    """The simulated allocator or enclave ran out of address space.

    Intel MPX inside enclaves dies this way when bounds tables exhaust
    memory (paper Fig. 1, Fig. 7 `dedup`).
    """

    def __init__(self, requested: int, reason: str = ""):
        self.requested = requested
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(f"out of memory requesting {requested} bytes{detail}")


class WatchdogTimeout(ReproError):
    """A supervised worker exceeded its per-request instruction budget.

    Raised by the fleet watchdog (:mod:`repro.fleet`) when an enclave
    worker burns through its instruction budget without completing the
    in-flight request — the simulation's analog of a stuck/livelocked
    enclave that the supervisor must kill and restart.
    """

    def __init__(self, budget: int, spent: int, request_id: int = -1):
        self.budget = budget
        self.spent = spent
        self.request_id = request_id
        super().__init__(
            f"watchdog timeout: {spent} instructions spent on one request "
            f"(budget {budget})")


class EnclaveCrash(ReproError):
    """The shielded application terminated abnormally (fail-stop semantics)."""

    def __init__(self, cause: Exception):
        self.cause = cause
        super().__init__(f"enclave crashed: {cause}")


class VMError(ReproError):
    """Ill-formed program reached the interpreter (verifier should prevent)."""


class ProgramExit(ReproError):
    """The simulated program called exit(); carries the exit code."""

    def __init__(self, code: int = 0):
        self.code = code
        super().__init__(f"exit({code})")


class TrapError(VMError):
    """The program executed an explicit trap/abort instruction."""


class CompileError(ReproError):
    """MiniC front-end error (lex/parse/type-check/codegen)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        where = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{where}")


class IRVerifyError(ReproError):
    """The IR verifier rejected a module."""


class ControlFlowHijack(ReproError):
    """An indirect control transfer reached a non-code or forbidden target.

    Raised when a corrupted return address or function pointer is actually
    *followed* by the VM — i.e. the attack succeeded.  Detection schemes are
    expected to raise :class:`BoundsViolation` before this point.
    """

    def __init__(self, target: int, via: str):
        self.target = target
        self.via = via
        super().__init__(f"control-flow hijack via {via} to 0x{target:08x}")
