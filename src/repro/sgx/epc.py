"""Enclave Page Cache (EPC) residency model.

The EPC is the scarce resource that shapes every result in the paper: it is
~94 MiB usable on real hardware, shared by all enclaves, and paging a page
out requires re-encryption (§2.1, "from 2x for sequential memory accesses
and up to 2000x for random ones").  We model it as an LRU-resident set of
pages with a fixed per-fault cost; fault *counts* then reproduce the
sequential-vs-random asymmetry (a streaming workload faults once per page, a
thrashing one refaults endlessly — exactly Table 3's page-fault columns).
"""

from __future__ import annotations

from typing import Dict

from repro.memory.layout import PAGE_SHIFT


class EPC:
    """LRU set of resident enclave pages with bounded capacity."""

    def __init__(self, capacity_bytes: int):
        self.capacity_pages = max(1, capacity_bytes >> PAGE_SHIFT)
        self._resident: Dict[int, None] = {}
        self.faults = 0
        self.evictions = 0
        self.pages_touched: set = set()
        self.peak_resident = 0
        #: Optional ``repro.telemetry.Telemetry`` observing flush events
        #: (fault events are published by the enclave's trace hook, which
        #: owns the instruction clock).
        self.telemetry = None
        #: Optional ``repro.forensics.Forensics`` recording flush events.
        self.forensics = None

    def touch(self, page: int) -> bool:
        """Mark ``page`` accessed from memory; returns True if it faulted."""
        resident = self._resident
        if page in resident:
            del resident[page]
            resident[page] = None
            return False
        self.faults += 1
        self.pages_touched.add(page)
        resident[page] = None
        if len(resident) > self.capacity_pages:
            evicted = next(iter(resident))
            del resident[evicted]
            self.evictions += 1
        if len(resident) > self.peak_resident:
            self.peak_resident = len(resident)
        return True

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def flush(self) -> int:
        """Evict every resident page (an EPC pressure spike: another enclave
        or the kernel claimed the cache).  Subsequent touches re-fault.
        Returns the number of pages evicted."""
        evicted = len(self._resident)
        self._resident.clear()
        self.evictions += evicted
        if self.telemetry is not None:
            self.telemetry.epc_flush(evicted)
        if self.forensics is not None:
            self.forensics.epc_flush(evicted)
        return evicted

    def reset(self) -> None:
        self._resident.clear()
        self.faults = 0
        self.evictions = 0
        self.pages_touched.clear()
        self.peak_resident = 0
