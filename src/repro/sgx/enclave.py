"""The simulated SGX enclave: address space + cache hierarchy + EPC + costs.

An :class:`Enclave` is the "machine" a shielded program runs on.  It owns
the 32-bit address space (starting at 0x0, as SGXBounds requires — paper
§5.1), installs a tracer that charges every data access through the cache
and EPC models, and reports the paper's two headline metrics: cycles
(performance) and peak reserved virtual memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.memory.address_space import AddressSpace, PERM_GUARD
from repro.memory.allocator import FreeListAllocator
from repro.memory.layout import GUARD_PAGE_BASE, PAGE_SHIFT, PAGE_SIZE
from repro.sgx.cache import CacheHierarchy
from repro.sgx.counters import CostModel, PerfCounters
from repro.sgx.epc import EPC


@dataclass(frozen=True)
class ColdStartModel:
    """Cycle cost of bringing a crashed enclave back to service.

    Fail-stop is not one lost request: the replacement enclave must be
    rebuilt (ECREATE/EADD/EEXTEND/EINIT measurement over every page),
    re-attested to the clients, and — the dominant, workload-dependent
    term — its working set re-faulted into a cold EPC page by page.  The
    per-page term reuses the EPC-fault scale of :class:`CostModel`
    (eviction + re-encryption + reload), so restart cost grows with the
    working set the crash threw away.
    """

    build_cycles: int = 120_000        # ECREATE/EADD/EEXTEND/EINIT
    attestation_cycles: int = 60_000   # quote + verification round-trip
    epc_rewarm_cycles_per_page: int = 30_000   # re-fault one working-set page
    #: Multiplier on the EPC re-warm term — the knob the fleet experiment
    #: sweeps to show fail-stop's availability gap growing with state.
    rewarm_scale: float = 1.0

    def restart_cycles(self, working_set_pages: int) -> int:
        """Simulated cycles to rebuild, re-attest, and re-warm."""
        rewarm = int(max(0, working_set_pages)
                     * self.epc_rewarm_cycles_per_page * self.rewarm_scale)
        return self.build_cycles + self.attestation_cycles + rewarm

    def scaled(self, rewarm_scale: float) -> "ColdStartModel":
        """The same model with the EPC re-warm term scaled."""
        return replace(self, rewarm_scale=rewarm_scale)


@dataclass(frozen=True)
class EnclaveConfig:
    """Machine parameters.

    The simulation runs at roughly 1/1000 the scale of the paper's testbed
    (working sets of tens of KiB to a few MiB instead of tens of MiB to
    GiB), so cache and EPC sizes are scaled the same way; the *ratios*
    between working set, caches and EPC are what reproduce the paper's
    crossover behaviour.
    """

    l1_bytes: int = 16 * 1024
    llc_bytes: int = 256 * 1024
    epc_bytes: int = 4 * 1024 * 1024
    enclave: bool = True          # False = unconstrained (Fig. 12 mode)
    #: Committed-memory budget (0 = unlimited); metadata blow-ups past this
    #: raise OutOfMemory, reproducing MPX's in-enclave crashes.
    commit_limit_bytes: int = 0
    cost: CostModel = field(default_factory=CostModel)
    #: Crash-restart pricing (used by the fleet supervisor; never charged
    #: on single-run paths).
    cold_start: ColdStartModel = field(default_factory=ColdStartModel)
    #: Fraction of accesses sampled through the cache/EPC model (1 = all).
    #: Lowering it speeds large sweeps up; counters are scaled back up.
    sample_shift: int = 0

    def outside_sgx(self) -> "EnclaveConfig":
        """The same machine without EPC/MEE constraints (Fig. 12)."""
        return replace(self, enclave=False)

    def with_epc(self, epc_bytes: int) -> "EnclaveConfig":
        return replace(self, epc_bytes=epc_bytes)


class Enclave:
    """One shielded execution environment."""

    def __init__(self, config: Optional[EnclaveConfig] = None):
        self.config = config or EnclaveConfig()
        self.space = AddressSpace(
            commit_limit=self.config.commit_limit_bytes
            if self.config.enclave else 0)
        self.heap = FreeListAllocator(self.space)
        self.caches = CacheHierarchy(self.config.l1_bytes, self.config.llc_bytes)
        self.epc = EPC(self.config.epc_bytes) if self.config.enclave else None
        self.counters = PerfCounters()
        #: Observability hooks; installed via :meth:`attach_telemetry` /
        #: :meth:`attach_forensics` so the default trace path stays free
        #: of observer code entirely.
        self.telemetry = None
        self.forensics = None
        # The unaddressable last page (paper §4.4) protects hoisted checks.
        self.space.map(GUARD_PAGE_BASE, PAGE_SIZE, PERM_GUARD, "guard")
        self.space.tracer = self._trace

    def attach_telemetry(self, telemetry) -> None:
        """Swap in the telemetry-aware trace hook (EPC-fault events)."""
        self.telemetry = telemetry
        self._install_tracer()
        if self.epc is not None:
            self.epc.telemetry = telemetry

    def attach_forensics(self, forensics) -> None:
        """Swap in the forensics-aware trace hook (EPC fault/flush
        records into the flight recorder; counters unchanged)."""
        self.forensics = forensics
        self._install_tracer()
        if self.epc is not None:
            self.epc.forensics = forensics

    def _install_tracer(self) -> None:
        if self.telemetry is not None and self.forensics is not None:
            self.space.tracer = self._trace_observed
        elif self.telemetry is not None:
            self.space.tracer = self._trace_telemetry
        elif self.forensics is not None:
            self.space.tracer = self._trace_forensics
        else:
            self.space.tracer = self._trace

    # ------------------------------------------------------------------
    def _trace(self, address: int, size: int, is_write: bool) -> None:
        counters = self.counters
        if is_write:
            counters.stores += 1
        else:
            counters.loads += 1
        depth = self.caches.access(address, size, counters)
        if depth == 2 and self.epc is not None:
            counters.mee_decrypts += 1
            if self.epc.touch(address >> PAGE_SHIFT):
                counters.epc_faults += 1

    def _trace_telemetry(self, address: int, size: int,
                         is_write: bool) -> None:
        """The same accounting as :meth:`_trace`, plus fault telemetry.
        Charges identical counters — telemetry only observes."""
        counters = self.counters
        if is_write:
            counters.stores += 1
        else:
            counters.loads += 1
        depth = self.caches.access(address, size, counters)
        if depth == 2 and self.epc is not None:
            counters.mee_decrypts += 1
            if self.epc.touch(address >> PAGE_SHIFT):
                counters.epc_faults += 1
                self.telemetry.epc_fault(address >> PAGE_SHIFT,
                                         counters.instructions,
                                         self.epc.resident_pages)

    def _trace_forensics(self, address: int, size: int,
                         is_write: bool) -> None:
        """The same accounting as :meth:`_trace`, plus an EPC-fault
        flight-recorder record.  Charges identical counters."""
        counters = self.counters
        if is_write:
            counters.stores += 1
        else:
            counters.loads += 1
        depth = self.caches.access(address, size, counters)
        if depth == 2 and self.epc is not None:
            counters.mee_decrypts += 1
            if self.epc.touch(address >> PAGE_SHIFT):
                counters.epc_faults += 1
                self.forensics.epc_fault(address >> PAGE_SHIFT,
                                         counters.instructions,
                                         self.epc.resident_pages)

    def _trace_observed(self, address: int, size: int,
                        is_write: bool) -> None:
        """Telemetry and forensics both attached; identical charges."""
        counters = self.counters
        if is_write:
            counters.stores += 1
        else:
            counters.loads += 1
        depth = self.caches.access(address, size, counters)
        if depth == 2 and self.epc is not None:
            counters.mee_decrypts += 1
            if self.epc.touch(address >> PAGE_SHIFT):
                counters.epc_faults += 1
                page = address >> PAGE_SHIFT
                resident = self.epc.resident_pages
                self.telemetry.epc_fault(page, counters.instructions,
                                         resident)
                self.forensics.epc_fault(page, counters.instructions,
                                         resident)

    # ------------------------------------------------------------------
    def cycles(self) -> int:
        """Total cycles implied by the counters under this cost model."""
        return self.config.cost.cycles_for(self.counters, self.config.enclave)

    def finalize(self) -> PerfCounters:
        """Freeze the cycle total into the counters and return them."""
        self.counters.cycles = self.cycles()
        if self.telemetry is not None:
            self.telemetry.collect_counters(self.counters.snapshot())
            registry = self.telemetry.registry
            for name, value in self.caches.stats().items():
                registry.gauge(f"cache.{name}").set(value)
            if self.epc is not None:
                registry.gauge("epc.peak_resident").set(
                    self.epc.peak_resident)
                registry.gauge("epc.pages_touched").set(
                    len(self.epc.pages_touched))
        return self.counters

    def working_set_pages(self) -> int:
        """Pages a restarted replacement would have to re-warm.

        The EPC peak-resident count is the working set the cost model
        actually priced; outside SGX (no EPC) fall back to materialized
        pages of the address space.
        """
        if self.epc is not None:
            return max(1, self.epc.peak_resident)
        return max(1, self.space.stats()["materialized_pages"])

    def cold_start_cycles(self, model: Optional[ColdStartModel] = None) -> int:
        """Restart cost for *this* enclave's working set (fleet restarts)."""
        model = model or self.config.cold_start
        return model.restart_cycles(self.working_set_pages())

    def memory_report(self) -> Dict[str, int]:
        """Virtual-memory metrics, the paper's memory-overhead measure."""
        stats = self.space.stats()
        report = {
            "peak_reserved_bytes": stats["peak_reserved"],
            "reserved_bytes": stats["reserved_bytes"],
            "materialized_bytes": stats["materialized_pages"] * PAGE_SIZE,
            "heap_bytes": self.heap.heap_bytes(),
        }
        if self.epc is not None:
            report["epc_capacity_pages"] = self.epc.capacity_pages
            report["epc_peak_resident"] = self.epc.peak_resident
            report["epc_pages_touched"] = len(self.epc.pages_touched)
        return report
