"""Performance counters for the simulated machine.

These are the events the paper's analysis is phrased in: retired
instructions, branches, cache accesses/misses, EPC page faults (Table 3,
§6.2, §6.3).  The cycle total is a weighted sum computed by the enclave's
cost model, so "runtime" comparisons between schemes are reproducible and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class PerfCounters:
    """Mutable event counters; one instance per program execution."""

    instructions: int = 0
    branches: int = 0
    calls: int = 0
    loads: int = 0
    stores: int = 0
    l1_accesses: int = 0
    l1_misses: int = 0
    llc_misses: int = 0
    epc_faults: int = 0
    mee_decrypts: int = 0
    bounds_checks: int = 0
    checks_elided: int = 0
    checks_hoisted: int = 0
    boundless_hits: int = 0
    boundless_allocs: int = 0
    cycles: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy, e.g. for reports."""
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    def add(self, other: "PerfCounters") -> None:
        """Accumulate another counter set into this one."""
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def reset(self) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)


#: Field names precomputed once: ``dataclasses.fields()`` rebuilds a tuple
#: of Field objects per call, which showed up in profiles of snapshot-heavy
#: paths (per-segment telemetry attribution, harness sweeps).
COUNTER_FIELDS = tuple(f.name for f in fields(PerfCounters))


@dataclass
class CostModel:
    """Cycle weights for each event class.

    Defaults approximate the relative costs the paper reports (Fig. 2):
    on-die hits are cheap, DRAM is ~100 cycles, an enclave LLC miss pays an
    extra MEE decrypt, and an EPC page fault (evict + re-encrypt + reload)
    costs tens of thousands of cycles — which is what makes metadata-heavy
    schemes collapse once their working set outgrows the EPC.
    """

    instruction: int = 1
    #: Extra cost per branch. Instrumentation branches are almost always
    #: perfectly predicted (checks pass), so the default models them as
    #: folded into the pipeline; raise it to study misprediction effects.
    branch: int = 0
    l1_hit: int = 1
    llc_hit: int = 12
    dram: int = 120
    mee_decrypt: int = 100    # extra per enclave LLC miss
    epc_fault: int = 30_000   # page eviction + re-encryption + reload

    def cycles_for(self, counters: PerfCounters, enclave: bool) -> int:
        """Total cycles implied by ``counters`` under this cost model."""
        memory_ops = counters.loads + counters.stores
        l1_hits = counters.l1_accesses - counters.l1_misses
        llc_hits = counters.l1_misses - counters.llc_misses
        cycles = (
            counters.instructions * self.instruction
            + counters.branches * self.branch
            + l1_hits * self.l1_hit
            + llc_hits * self.llc_hit
            + counters.llc_misses * self.dram
            + counters.epc_faults * self.epc_fault
        )
        if enclave:
            cycles += counters.llc_misses * self.mee_decrypt
        # Accesses not going through the cache model (bulk libc ops) still
        # pay the L1 hit cost per op.
        cycles += max(0, memory_ops - counters.l1_accesses) * self.l1_hit
        return cycles
