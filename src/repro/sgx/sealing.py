"""Simulated SGX sealing: priced seal/unseal with rollback protection.

Real enclaves persist state across crashes by *sealing* it: the enclave
derives a sealing key bound to its identity (``EGETKEY``), AES-GCM
encrypts the blob, and stores it outside the EPC.  Restart recovers the
state by unsealing and authenticating the blob.  Two properties matter
for a recovery subsystem and both are modelled here:

* **Cost** — sealing is not free.  The SGX benchmarking literature
  (Kumar et al., arXiv:2205.06415) shows seal/unseal dominated by a
  fixed ``EGETKEY`` + GCM-setup term plus a per-byte encryption term.
  :class:`SealingModel` prices both directions in simulated cycles so
  checkpoint cadence shows up as ticks, exactly like the EPC re-warm
  term of :class:`repro.sgx.enclave.ColdStartModel`.

* **Rollback protection** — sealed blobs are confidential and authentic
  but *not fresh*: the OS can replay an old blob.  Real systems bind
  each seal to a hardware monotonic counter and reject any blob whose
  counter does not match.  :class:`MonotonicCounter` plus the counter
  check in :meth:`SealingService.unseal` reproduce that: a stale blob
  raises :class:`SealRollbackError` instead of silently restoring old
  state.

Everything is deterministic: the "MAC" is a SHA-256 over the canonical
blob encoding, so two seeded runs produce byte-identical blobs and any
bit flip is detected as :class:`SealIntegrityError`.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import ReproError


class SealError(ReproError):
    """Base class for seal/unseal failures."""


class SealIntegrityError(SealError):
    """The blob's MAC does not authenticate (corrupted or forged)."""

    def __init__(self, detail: str = ""):
        super().__init__(f"sealed blob failed authentication"
                         f"{': ' + detail if detail else ''}")


class SealRollbackError(SealError):
    """The blob authenticates but its monotonic counter is stale.

    An attacker (or a buggy supervisor) presented an *old* sealed
    checkpoint; accepting it would silently roll the enclave's state
    back — the exact attack hardware monotonic counters exist to stop.
    """

    def __init__(self, expected: int, got: int):
        self.expected = expected
        self.got = got
        super().__init__(
            f"sealed blob rollback detected: counter {got}, "
            f"hardware counter at {expected}")


@dataclass(frozen=True)
class SealingModel:
    """Cycle cost of sealing/unsealing a blob of a given size.

    The fixed terms cover ``EGETKEY`` + AES-GCM key schedule (seal) and
    key re-derivation + tag verification (unseal); the per-byte terms
    cover the GCM pass over the payload.  Unsealing is slightly cheaper
    per byte (decrypt + verify pipelines better than encrypt + tag
    generation at this scale).  ``counter_cycles`` prices the monotonic
    counter access, which on real hardware is the slow, contended part.
    """

    seal_base_cycles: int = 18_000       # EGETKEY + GCM setup
    seal_cycles_per_byte: int = 14       # AES-GCM encrypt + MAC
    unseal_base_cycles: int = 15_000     # key re-derivation + tag check
    unseal_cycles_per_byte: int = 12     # AES-GCM decrypt + verify
    counter_cycles: int = 9_000          # monotonic counter read/increment
    #: Multiplier on both per-byte terms — the knob recovery sweeps turn
    #: to model faster/slower sealing hardware.
    byte_scale: float = 1.0

    def seal_cycles(self, nbytes: int) -> int:
        return self.seal_base_cycles + self.counter_cycles + int(
            max(0, nbytes) * self.seal_cycles_per_byte * self.byte_scale)

    def unseal_cycles(self, nbytes: int) -> int:
        return self.unseal_base_cycles + self.counter_cycles + int(
            max(0, nbytes) * self.unseal_cycles_per_byte * self.byte_scale)

    def scaled(self, byte_scale: float) -> "SealingModel":
        return replace(self, byte_scale=byte_scale)


@dataclass(frozen=True)
class SealedBlob:
    """One sealed checkpoint: payload + identity + freshness + MAC."""

    identity: str          # enclave identity the seal is bound to
    counter: int           # monotonic counter value at seal time
    payload: bytes         # the (conceptually encrypted) state bytes
    mac: bytes             # SHA-256 over the canonical encoding

    def size(self) -> int:
        return len(self.payload)


def _mac(identity: str, counter: int, payload: bytes) -> bytes:
    ident = identity.encode("utf-8")
    return hashlib.sha256(
        struct.pack("<II", len(ident), counter) + ident + payload).digest()


class MonotonicCounter:
    """A hardware monotonic counter: increments, never decrements."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def increment(self) -> int:
        self.value += 1
        return self.value


class SealingService:
    """Seals and unseals blobs for a set of enclave identities.

    One service per fleet; each identity (logical shard) gets its own
    monotonic counter.  All methods return ``(result, cycles)`` so the
    caller can land the cost on the simulated clock.
    """

    def __init__(self, model: Optional[SealingModel] = None):
        self.model = model or SealingModel()
        self.counters: Dict[str, MonotonicCounter] = {}
        self.seals = 0
        self.unseals = 0
        self.rollbacks_rejected = 0
        self.integrity_failures = 0
        self.sealed_bytes = 0
        self.seal_cycles_total = 0
        self.unseal_cycles_total = 0

    def _counter(self, identity: str) -> MonotonicCounter:
        counter = self.counters.get(identity)
        if counter is None:
            counter = self.counters[identity] = MonotonicCounter()
        return counter

    def seal(self, identity: str, payload: bytes) -> Tuple[SealedBlob, int]:
        """Seal ``payload`` for ``identity``; returns (blob, cycles)."""
        counter = self._counter(identity).increment()
        blob = SealedBlob(identity=identity, counter=counter,
                          payload=payload,
                          mac=_mac(identity, counter, payload))
        cycles = self.model.seal_cycles(len(payload))
        self.seals += 1
        self.sealed_bytes += len(payload)
        self.seal_cycles_total += cycles
        return blob, cycles

    def unseal(self, identity: str, blob: SealedBlob) -> Tuple[bytes, int]:
        """Authenticate + freshness-check ``blob``; returns
        (payload, cycles).  The cycle cost is charged even on rejection —
        the enclave does the GCM work before it can tell the blob is bad.
        """
        cycles = self.model.unseal_cycles(blob.size())
        self.unseals += 1
        self.unseal_cycles_total += cycles
        if blob.identity != identity:
            self.integrity_failures += 1
            raise SealIntegrityError(
                f"blob sealed for {blob.identity!r}, not {identity!r}")
        if blob.mac != _mac(blob.identity, blob.counter, blob.payload):
            self.integrity_failures += 1
            raise SealIntegrityError("MAC mismatch")
        expected = self._counter(identity).value
        if blob.counter != expected:
            self.rollbacks_rejected += 1
            raise SealRollbackError(expected, blob.counter)
        return blob.payload, cycles

    def stats(self) -> Dict[str, int]:
        return {
            "seals": self.seals,
            "unseals": self.unseals,
            "sealed_bytes": self.sealed_bytes,
            "seal_cycles": self.seal_cycles_total,
            "unseal_cycles": self.unseal_cycles_total,
            "rollbacks_rejected": self.rollbacks_rejected,
            "integrity_failures": self.integrity_failures,
        }
