"""Set-associative cache simulator (L1 + shared LLC).

The paper repeatedly explains scheme behaviour through cache effects:
AddressSanitizer's shadow loads break locality (matrixmul, §6.3–6.4), MPX's
bounds-table walks multiply L1 traffic (pca, §6.2), and SGXBounds' in-place
metadata preserves the original layout.  A small, deterministic cache model
lets those effects show up in the counters.
"""

from __future__ import annotations

from typing import Dict

from repro.sgx.counters import PerfCounters

LINE_SHIFT = 6
LINE_SIZE = 1 << LINE_SHIFT


class Cache:
    """One cache level: set-associative, LRU within a set.

    Each set is a dict in recency order, least-recently-used first
    (insertion-ordered dicts make hit/evict O(1) without the exception
    a list ``remove`` would raise on every miss — this is the hottest
    function of the whole simulator).
    """

    def __init__(self, size_bytes: int, associativity: int = 4):
        lines = max(associativity, size_bytes // LINE_SIZE)
        self.sets = max(1, lines // associativity)
        self.associativity = associativity
        self.flushes = 0
        self._data: Dict[int, Dict[int, None]] = {}

    def occupied_lines(self) -> int:
        """Lines currently resident (for end-of-run telemetry)."""
        return sum(len(ways) for ways in self._data.values())

    def access(self, line: int) -> bool:
        """Touch ``line``; returns True on hit."""
        index = line % self.sets
        ways = self._data.get(index)
        if ways is None:
            self._data[index] = {line: None}
            return False
        if line in ways:
            del ways[line]
            ways[line] = None          # re-append as most recent
            return True
        ways[line] = None
        if len(ways) > self.associativity:
            del ways[next(iter(ways))]   # evict the LRU line
        return False

    def flush(self) -> None:
        self.flushes += 1
        self._data.clear()


class CacheHierarchy:
    """L1 + LLC; returns the miss depth of each access.

    ``access`` returns 0 (L1 hit), 1 (LLC hit) or 2 (memory access) and
    updates the counters; the enclave model turns depth-2 accesses into
    MEE/EPC events.
    """

    def __init__(self, l1_bytes: int, llc_bytes: int,
                 l1_assoc: int = 4, llc_assoc: int = 8):
        self.l1 = Cache(l1_bytes, l1_assoc)
        self.llc = Cache(llc_bytes, llc_assoc)

    def access(self, address: int, size: int, counters: PerfCounters) -> int:
        """Simulate one data access; returns miss depth (0, 1, or 2)."""
        line = address >> LINE_SHIFT
        counters.l1_accesses += 1
        if self.l1.access(line):
            depth = 0
        elif self.llc.access(line):
            counters.l1_misses += 1
            depth = 1
        else:
            counters.l1_misses += 1
            counters.llc_misses += 1
            depth = 2
        # An access straddling a line boundary touches the next line too.
        if (address & (LINE_SIZE - 1)) + size > LINE_SIZE:
            next_line = line + 1
            counters.l1_accesses += 1
            if not self.l1.access(next_line):
                counters.l1_misses += 1
                if not self.llc.access(next_line):
                    counters.llc_misses += 1
                    depth = 2
        return depth

    def flush(self) -> None:
        self.l1.flush()
        self.llc.flush()

    def stats(self) -> Dict[str, int]:
        """End-of-run occupancy/flush figures the telemetry registry
        publishes as gauges (miss counts live in PerfCounters)."""
        return {
            "l1_occupied_lines": self.l1.occupied_lines(),
            "llc_occupied_lines": self.llc.occupied_lines(),
            "l1_flushes": self.l1.flushes,
            "llc_flushes": self.llc.flushes,
        }
