"""Simulated Intel SGX: enclave, EPC residency, caches, cost model."""

from repro.sgx.cache import Cache, CacheHierarchy, LINE_SIZE
from repro.sgx.counters import CostModel, PerfCounters
from repro.sgx.enclave import ColdStartModel, Enclave, EnclaveConfig
from repro.sgx.epc import EPC
from repro.sgx.sealing import (
    MonotonicCounter,
    SealedBlob,
    SealError,
    SealIntegrityError,
    SealingModel,
    SealingService,
    SealRollbackError,
)

__all__ = [
    "ColdStartModel",
    "Enclave",
    "EnclaveConfig",
    "EPC",
    "Cache",
    "CacheHierarchy",
    "LINE_SIZE",
    "CostModel",
    "PerfCounters",
    "MonotonicCounter",
    "SealedBlob",
    "SealError",
    "SealIntegrityError",
    "SealingModel",
    "SealingService",
    "SealRollbackError",
]
