"""The virtual machine: interpreter, loader, schemes, natives, libc."""

from repro.vm.loader import Program, load_program
from repro.vm.machine import BLOCK_RETRY, NativeResult, VM, run_module
from repro.vm.scheme import NativeScheme, SchemeRuntime

__all__ = [
    "VM",
    "run_module",
    "Program",
    "load_program",
    "SchemeRuntime",
    "NativeScheme",
    "NativeResult",
    "BLOCK_RETRY",
]
