"""Core native functions: I/O, time, randomness, threads, locks.

These model the SCONE system-call layer (paper §2.1): the program reaches
the outside world only through these narrow, wrapped entry points.  Each
native charges a nominal instruction cost so instrumented and native runs
stay comparable.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ProgramExit, TrapError, VMError
from repro.memory.layout import ADDRESS_MASK
from repro.vm import machine as vm_mod

_SYSCALL_COST = 20


def _strip(vm, ptr: int) -> int:
    return vm.scheme.strip(ptr)


def _read_str(vm, ptr: int) -> bytes:
    address = _strip(vm, ptr)
    tracer, vm.space.tracer = vm.space.tracer, None
    try:
        return vm.space.read_cstring(address)
    finally:
        vm.space.tracer = tracer


# ---------------------------------------------------------------------------
def _print_str(vm, thread, args):
    vm.charge(_SYSCALL_COST)
    vm.stdout.append(_read_str(vm, args[0]).decode("latin-1"))
    return 0


def _print_int(vm, thread, args):
    vm.charge(_SYSCALL_COST)
    value = args[0]
    if value & (1 << 63):
        value -= 1 << 64
    vm.stdout.append(str(value))
    return 0


def _print_float(vm, thread, args):
    vm.charge(_SYSCALL_COST)
    vm.stdout.append(f"{args[0]:g}")
    return 0


def _putchar(vm, thread, args):
    vm.charge(_SYSCALL_COST)
    vm.stdout.append(chr(args[0] & 0xFF))
    return args[0]


def _puts(vm, thread, args):
    vm.charge(_SYSCALL_COST)
    vm.stdout.append(_read_str(vm, args[0]).decode("latin-1") + "\n")
    return 0


def _printf(vm, thread, args):
    """Minimal printf: %d %u %x %c %s %f %g %%, widths ignored."""
    fmt = _read_str(vm, args[0]).decode("latin-1")
    out: List[str] = []
    argi = 1
    i = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        while i < n and (fmt[i].isdigit() or fmt[i] in ".-+ l"):
            i += 1
        if i >= n:
            break
        conv = fmt[i]
        i += 1
        if conv == "%":
            out.append("%")
            continue
        value = args[argi] if argi < len(args) else 0
        argi += 1
        if conv in "di":
            iv = value
            if isinstance(iv, int) and iv & (1 << 63):
                iv -= 1 << 64
            out.append(str(iv))
        elif conv == "u":
            out.append(str(value))
        elif conv == "x":
            out.append(f"{value:x}")
        elif conv == "c":
            out.append(chr(value & 0xFF))
        elif conv == "s":
            out.append(_read_str(vm, value).decode("latin-1"))
        elif conv in "fge":
            out.append(f"{float(value):g}")
        else:
            out.append(f"%{conv}")
    text = "".join(out)
    vm.charge(_SYSCALL_COST + len(text))
    vm.stdout.append(text)
    return len(text)


def _clock(vm, thread, args):
    """Deterministic 'time': retired instructions so far."""
    vm.charge(_SYSCALL_COST)
    return vm.counters.instructions


def _abort(vm, thread, args):
    raise TrapError("abort() called")


def _exit(vm, thread, args):
    raise ProgramExit(args[0] if args else 0)


# -- deterministic PRNG (per-VM state) --------------------------------------
def _srand(vm, thread, args):
    vm.charge(5)
    vm._rng_state = args[0] & 0xFFFFFFFF or 1
    return 0


def _rand(vm, thread, args):
    vm.charge(5)
    state = getattr(vm, "_rng_state", 1)
    state = (state * 1103515245 + 12345) & 0x7FFFFFFF
    vm._rng_state = state
    return state >> 8 & 0x3FFF_FFFF


# -- threads ------------------------------------------------------------------
def _spawn(vm, thread, args):
    """spawn(fn_ptr, arg) -> tid; models pthread_create."""
    vm.charge(_SYSCALL_COST * 5)
    target = args[0] & ADDRESS_MASK
    fn = vm.program.function_at(target)
    if fn is None:
        raise VMError(f"spawn of non-function address 0x{target:08x}")
    child = vm.new_thread(fn, list(args[1:]))
    return child.tid


def _join(vm, thread, args):
    """join(tid) -> thread result; blocks until the thread finishes."""
    tid = args[0]
    if tid >= len(vm.threads) or tid < 0:
        raise VMError(f"join of unknown thread {tid}")
    target = vm.threads[tid]
    if target.state == vm_mod.DONE:
        vm.charge(_SYSCALL_COST)
        return target.result
    thread.state = vm_mod.BLOCKED
    thread.wait = ("join", tid)
    return vm_mod.BLOCK_RETRY


def _yield(vm, thread, args):
    vm.charge(2)
    return 0


def _mutex_lock(vm, thread, args):
    """Spin-free lock over a memory word (0 = free, else owner tid + 1)."""
    address = _strip(vm, args[0])
    value = vm.space.read_u64(address)
    if value == 0:
        vm.space.write_u64(address, thread.tid + 1)
        vm.charge(_SYSCALL_COST)
        return 0
    thread.state = vm_mod.BLOCKED
    thread.wait = ("lock", address)
    return vm_mod.BLOCK_RETRY


def _mutex_unlock(vm, thread, args):
    address = _strip(vm, args[0])
    vm.space.write_u64(address, 0)
    vm.unblock_lock_waiters(address)
    vm.charge(_SYSCALL_COST)
    return 0


def core_natives() -> Dict[str, Callable]:
    return {
        "print_str": _print_str,
        "print_int": _print_int,
        "print_float": _print_float,
        "putchar": _putchar,
        "puts": _puts,
        "printf": _printf,
        "clock": _clock,
        "abort": _abort,
        "exit": _exit,
        "srand": _srand,
        "rand": _rand,
        "spawn": _spawn,
        "join": _join,
        "thread_yield": _yield,
        "mutex_lock": _mutex_lock,
        "mutex_unlock": _mutex_unlock,
    }
