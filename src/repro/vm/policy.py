"""Violation policies: what the runtime does when a bounds check fails.

The paper evaluates two responses to a detected spatial violation:
fail-stop (crash the enclave, §3) and *boundless memory* (tolerate the
access through the overlay cache, §4.2).  Long-running shielded services
need the full spectrum, so every scheme runtime carries a per-run
:data:`ViolationPolicy`:

``abort``
    Fail-stop: raise :class:`repro.errors.BoundsViolation` and kill the
    enclave.  The default, and exactly the seed behaviour.

``boundless``
    Failure-oblivious: redirect the access into the boundless overlay
    (SGXBounds) or clamp it in the libc wrappers.  Schemes without an
    overlay degrade to ``log-and-continue`` semantics for plain accesses
    but still clamp wrapper-visible ranges.

``log-and-continue``
    Audit mode: record the violation with full context and let the access
    proceed exactly as the uninstrumented program would have performed it.
    Detection without protection — useful for measuring attack surface.

``drop-request``
    Request-level graceful degradation: abort only the in-flight request.
    The VM rolls the faulting thread back to its last request checkpoint
    (taken at the ``net_recv`` boundary), the client is notified with an
    error response, and the server keeps serving.  Outside a request
    (no checkpoint yet) this degrades to ``abort``.
"""

from __future__ import annotations

from typing import Tuple

ABORT = "abort"
BOUNDLESS = "boundless"
LOG_AND_CONTINUE = "log-and-continue"
DROP_REQUEST = "drop-request"

ALL_POLICIES: Tuple[str, ...] = (ABORT, BOUNDLESS, LOG_AND_CONTINUE,
                                 DROP_REQUEST)

#: Policies under which execution continues past a violation in-place
#: (as opposed to aborting the enclave or unwinding the request).
CONTINUING = frozenset((BOUNDLESS, LOG_AND_CONTINUE))


def validate(policy: str) -> str:
    """Return ``policy`` if known, else raise ``ValueError``."""
    if policy not in ALL_POLICIES:
        raise ValueError(
            f"unknown violation policy {policy!r}; "
            f"expected one of {', '.join(ALL_POLICIES)}")
    return policy
