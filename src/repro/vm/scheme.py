"""Scheme runtime interface.

A *scheme* is one memory-safety approach: native (no protection),
SGXBounds, AddressSanitizer or Intel MPX.  Each scheme contributes

* a compile-time instrumentation pass (in ``repro.passes``), and
* a runtime — this interface — hooked into the loader (global layout),
  the allocator (malloc/free wrappers) and the libc natives (argument
  checking), mirroring the paper's split between the LLVM pass and the
  auxiliary C run-time (§5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import BoundsViolation, RequestAborted
from repro.memory.layout import ADDRESS_MASK
from repro.vm import policy as violation_policy

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.ir.module import GlobalVar, Module
    from repro.vm.machine import VM

#: Structured violation records kept per run (bounded; chaos runs can
#: produce thousands of tolerated violations).
VIOLATION_LOG_CAP = 128


class SchemeRuntime:
    """Base runtime: no protection (the "native SGX" baseline)."""

    #: Registry name; also stamped into instrumented modules' ``meta``.
    name = "native"
    #: Whether the VM should maintain per-register bounds (MPX only).
    uses_register_bounds = False
    #: Failure-oblivious mode (SGXBounds boundless memory, §4.2).
    boundless = False
    #: Minimum alignment the loader must give globals (ASan needs its
    #: 8-byte shadow granule).
    global_min_align = 1
    #: Superinstruction classes the predecoder (``repro.vm.fastpath``)
    #: may fuse for code instrumented by this scheme.  Fusion never
    #: changes observable behaviour — PerfCounters advance inside fused
    #: handlers exactly as the reference ladder would — so this is purely
    #: a dispatch-overhead knob; MPX adds its BNDCL+BNDCU+access triple.
    fastpath_fusion: Tuple[str, ...] = ("cmp_br", "gep_load", "gep_store")

    def __init__(self, policy: str = violation_policy.ABORT) -> None:
        self.vm: Optional["VM"] = None
        self.policy = violation_policy.validate(policy)
        self.violations = 0
        self.violation_log: List[dict] = []

    # -- violation policy --------------------------------------------------
    def handle_violation(self, vm: Optional["VM"],
                         err: BoundsViolation) -> None:
        """Apply this run's :mod:`violation policy <repro.vm.policy>`.

        Under ``abort`` the violation itself is raised (fail-stop, the
        seed behaviour); under ``drop-request`` a
        :class:`~repro.errors.RequestAborted` is raised so the VM can roll
        the in-flight request back to its checkpoint.  Under the
        continuing policies (``boundless``, ``log-and-continue``) the
        method records the violation and *returns* — the caller then
        redirects, clamps, or passes the access through.
        """
        self.violations += 1
        err.policy = self.policy
        tid = 0
        if vm is not None:
            thread = getattr(vm, "current", None)
            if thread is not None:
                tid = thread.tid
                if not err.function and thread.frames:
                    err.function = thread.frames[-1].fn.name
            telemetry = getattr(vm, "telemetry", None)
            if telemetry is not None:
                telemetry.violation(self.name, err,
                                    vm.counters.instructions, tid)
        if self.policy == violation_policy.ABORT:
            err.outcome = "aborted"
        elif self.policy == violation_policy.DROP_REQUEST:
            err.outcome = "request-dropped"
        elif self.policy == violation_policy.BOUNDLESS:
            err.outcome = "redirected"
        else:
            err.outcome = "logged"
        self._record_violation(err)
        if vm is not None:
            # Forensics observes after the outcome is stamped: terminal
            # policies get a full postmortem while the faulting thread's
            # stack is still intact (the VM unwinds it right after).
            forensics = getattr(vm, "forensics", None)
            if forensics is not None:
                forensics.on_violation(vm, self, err, tid)
        if self.policy == violation_policy.ABORT:
            raise err
        if self.policy == violation_policy.DROP_REQUEST:
            raise RequestAborted(err)

    def _record_violation(self, err: BoundsViolation) -> None:
        if len(self.violation_log) < VIOLATION_LOG_CAP:
            self.violation_log.append(err.context())

    # -- lifecycle -------------------------------------------------------
    def attach(self, vm: "VM") -> None:
        """Called once when the VM is created, before loading."""
        self.vm = vm

    def instrument(self, module: "Module") -> "Module":
        """Apply this scheme's compile-time pass (identity for native)."""
        return module

    # -- loader hooks ------------------------------------------------------
    def global_padding(self, var: "GlobalVar") -> Tuple[int, int]:
        """(pre, post) padding bytes around a global variable."""
        return (0, 0)

    def resolve_global_address(self, address: int, var: "GlobalVar") -> int:
        """Constant value the program sees for ``&var`` (tagged for
        SGXBounds)."""
        return address

    def on_global_loaded(self, vm: "VM", address: int, var: "GlobalVar") -> None:
        """Initialize per-object metadata for a loaded global."""

    # -- allocation --------------------------------------------------------
    def malloc(self, vm: "VM", size: int) -> int:
        return vm.enclave.heap.malloc(size)

    def calloc(self, vm: "VM", count: int, size: int) -> int:
        return vm.enclave.heap.calloc(count, size)

    def realloc(self, vm: "VM", ptr: int, size: int) -> int:
        return vm.enclave.heap.realloc(ptr & ADDRESS_MASK, size)

    def free(self, vm: "VM", ptr: int) -> None:
        vm.enclave.heap.free(ptr & ADDRESS_MASK)

    def alloc_bounds(self, ptr: int, size: int) -> Optional[Tuple[int, int]]:
        """Register bounds to attach to a fresh allocation (MPX only)."""
        return None

    def stack_object(self, vm: "VM", address: int, size: int) -> None:
        """Notify the runtime of a stack object coming to life (ASan
        poison bookkeeping happens through pass-inserted natives instead)."""

    # -- pointer handling for libc wrappers --------------------------------
    def strip(self, ptr: int) -> int:
        """Plain 32-bit address of ``ptr`` (drops any tag)."""
        return ptr & ADDRESS_MASK

    def check_range(self, vm: "VM", ptr: int, size: int,
                    is_write: bool) -> int:
        """Validate a [ptr, ptr+size) access from a libc wrapper; returns
        the plain address to use.  Raises or redirects on violation."""
        return ptr & ADDRESS_MASK

    def libc_range(self, vm: "VM", ptr: int, size: int, is_write: bool,
                   arg_bounds: Optional[Tuple[int, int]] = None
                   ) -> Tuple[int, int]:
        """Validate [ptr, ptr+size) on behalf of a libc wrapper.

        Returns ``(plain_address, valid_bytes)``.  ``valid_bytes < size``
        only in failure-oblivious modes (the wrapper then clamps the
        operation, e.g. Heartbleed's over-long memcpy copies zeros for the
        out-of-bounds tail); strict modes raise instead.  ``arg_bounds``
        carries MPX register bounds when available.
        """
        return (ptr & ADDRESS_MASK, size)

    def object_extent(self, vm: "VM", ptr: int) -> Optional[int]:
        """Bytes from ``ptr`` to the end of its referent object, when the
        scheme can tell (SGXBounds can from the tag); None otherwise.
        libc wrappers use it to clamp implicit-length operations."""
        return None

    # -- MPX bounds-table hooks (overridden by the MPX scheme) -------------
    def bt_load(self, vm: "VM", slot: int) -> Optional[Tuple[int, int]]:
        raise NotImplementedError(f"{self.name}: bndldx executed without MPX runtime")

    def bt_store(self, vm: "VM", slot: int,
                 bounds: Optional[Tuple[int, int]]) -> None:
        raise NotImplementedError(f"{self.name}: bndstx executed without MPX runtime")

    # -- extra native functions the pass's inserted calls resolve to -------
    def natives(self) -> Dict[str, Callable]:
        return {}

    # -- reporting ----------------------------------------------------------
    def memory_overhead_report(self, vm: "VM") -> Dict[str, int]:
        """Scheme-specific memory statistics for the harness."""
        return {}


class NativeScheme(SchemeRuntime):
    """Explicit alias for the unprotected baseline."""
