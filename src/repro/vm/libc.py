"""libc natives with per-scheme wrappers.

The paper leaves libc uninstrumented and wraps every entry point (§3.2
"Function calls": 4289 LOC of wrappers).  Our natives follow the same
pattern: extract plain pointers from (possibly tagged) arguments, validate
the accessed ranges through the scheme's ``libc_range`` hook, then perform
the bulk operation with per-cache-line cost accounting.

Failure-oblivious behaviour matches §4.2/§5.1: when the scheme runs in
boundless mode, over-long reads are satisfied with zeros for the
out-of-bounds tail (Heartbleed), over-long writes are clamped, and
"errno-style" wrappers (``net_recv``) return an error code so servers can
drop the offending request instead of crashing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import VMError
from repro.vm import machine as vm_mod
from repro.vm import policy as violation_policy

_CALL_COST = 6


def _arg_bounds(vm, index: int) -> Optional[Tuple[int, int]]:
    bounds = vm.native_arg_bounds
    if bounds is not None and index < len(bounds):
        return bounds[index]
    return None


def _range(vm, ptr: int, size: int, is_write: bool, arg_index: int):
    return vm.scheme.libc_range(vm, ptr, size, is_write,
                                arg_bounds=_arg_bounds(vm, arg_index))


# -- allocation ---------------------------------------------------------------
def _malloc(vm, thread, args):
    vm.charge(40)
    from repro.vm.machine import NativeResult
    ptr = vm.scheme.malloc(vm, args[0])
    if vm.faults is not None:
        ptr = vm.faults.corrupt_pointer(vm, ptr)
    bounds = vm.scheme.alloc_bounds(ptr, args[0])
    return NativeResult(ptr, bounds)


def _calloc(vm, thread, args):
    vm.charge(40 + (args[0] * args[1]) // 64)
    from repro.vm.machine import NativeResult
    ptr = vm.scheme.calloc(vm, args[0], args[1])
    bounds = vm.scheme.alloc_bounds(ptr, args[0] * args[1])
    return NativeResult(ptr, bounds)


def _realloc(vm, thread, args):
    vm.charge(60)
    from repro.vm.machine import NativeResult
    ptr = vm.scheme.realloc(vm, args[0], args[1])
    bounds = vm.scheme.alloc_bounds(ptr, args[1])
    return NativeResult(ptr, bounds)


def _free(vm, thread, args):
    vm.charge(30)
    vm.scheme.free(vm, args[0])
    return 0


# -- memory block operations ---------------------------------------------------
def _memcpy(vm, thread, args):
    dst, src, n = args[0], args[1], args[2]
    vm.charge(_CALL_COST + n // 8)
    s_addr, s_ok = _range(vm, src, n, False, 1)
    d_addr, d_ok = _range(vm, dst, n, True, 0)
    ok = min(s_ok, d_ok, n)
    if ok > 0:
        data = vm.bulk_read(s_addr, min(s_ok, ok))
        vm.bulk_write(d_addr, data)
    if ok < n and d_ok > ok:
        # Failure-oblivious: the unreadable tail arrives as zeros (§4.2,
        # exactly the paper's Heartbleed mitigation).
        vm.bulk_write(d_addr + ok, b"\x00" * (min(d_ok, n) - ok))
    return dst


def _memmove(vm, thread, args):
    return _memcpy(vm, thread, args)


def _memset(vm, thread, args):
    dst, value, n = args[0], args[1], args[2]
    vm.charge(_CALL_COST + n // 8)
    d_addr, d_ok = _range(vm, dst, n, True, 0)
    vm.bulk_write(d_addr, bytes((value & 0xFF,)) * min(d_ok, n))
    return dst


def _memcmp(vm, thread, args):
    a, b, n = args[0], args[1], args[2]
    vm.charge(_CALL_COST + n // 8)
    a_addr, a_ok = _range(vm, a, n, False, 0)
    b_addr, b_ok = _range(vm, b, n, False, 1)
    n = min(n, a_ok, b_ok)
    da = vm.bulk_read(a_addr, n)
    db = vm.bulk_read(b_addr, n)
    if da == db:
        return 0
    return 1 if da > db else (1 << 64) - 1


# -- strings -------------------------------------------------------------------
def _cstring(vm, ptr: int, arg_index: int) -> Tuple[int, bytes]:
    """Read a NUL-terminated string, bounds-checking the bytes read."""
    address = vm.scheme.strip(ptr)
    tracer, vm.space.tracer = vm.space.tracer, None
    try:
        data = vm.space.read_cstring(address)
    finally:
        vm.space.tracer = tracer
    # Validate the range we actually consumed (including the NUL).
    _range(vm, ptr, len(data) + 1, False, arg_index)
    vm.touch_range(address, len(data) + 1, False)
    return address, data


def _strlen(vm, thread, args):
    _, data = _cstring(vm, args[0], 0)
    vm.charge(_CALL_COST + len(data) // 8)
    return len(data)


def _strcpy(vm, thread, args):
    dst, src = args[0], args[1]
    _, data = _cstring(vm, src, 1)
    n = len(data) + 1
    vm.charge(_CALL_COST + n // 8)
    d_addr, d_ok = _range(vm, dst, n, True, 0)
    vm.bulk_write(d_addr, (data + b"\x00")[:d_ok])
    return dst


def _strncpy(vm, thread, args):
    dst, src, n = args[0], args[1], args[2]
    _, data = _cstring(vm, src, 1)
    payload = (data[:n]).ljust(n, b"\x00")
    vm.charge(_CALL_COST + n // 8)
    d_addr, d_ok = _range(vm, dst, n, True, 0)
    vm.bulk_write(d_addr, payload[:d_ok])
    return dst


def _strcmp(vm, thread, args):
    _, a = _cstring(vm, args[0], 0)
    _, b = _cstring(vm, args[1], 1)
    vm.charge(_CALL_COST + (min(len(a), len(b))) // 4)
    if a == b:
        return 0
    return 1 if a > b else (1 << 64) - 1


def _strncmp(vm, thread, args):
    n = args[2]
    _, a = _cstring(vm, args[0], 0)
    _, b = _cstring(vm, args[1], 1)
    a, b = a[:n], b[:n]
    vm.charge(_CALL_COST + n // 4)
    if a == b:
        return 0
    return 1 if a > b else (1 << 64) - 1


def _strcat(vm, thread, args):
    dst, src = args[0], args[1]
    d_plain, ddata = _cstring(vm, dst, 0)
    _, sdata = _cstring(vm, src, 1)
    n = len(sdata) + 1
    vm.charge(_CALL_COST + n // 8)
    tail_ptr = dst + len(ddata)   # keeps any tag: arithmetic in low bits only
    d_addr, d_ok = _range(vm, tail_ptr, n, True, 0)
    vm.bulk_write(d_addr, (sdata + b"\x00")[:d_ok])
    return dst


def _strchr(vm, thread, args):
    ptr, want = args[0], args[1] & 0xFF
    _, data = _cstring(vm, ptr, 0)
    vm.charge(_CALL_COST + len(data) // 8)
    index = data.find(bytes((want,)))
    if index < 0:
        return 0
    return ptr + index   # preserves the tag for SGXBounds


# -- network simulation (used by the server case studies) ----------------------
def _net_recv(vm, thread, args):
    """net_recv(conn, buf, len) -> bytes received, 0 on EOF, -1 on EINVAL.

    Mirrors the paper's recv wrapper: when the scheme can see that the
    buffer is smaller than ``len`` it returns an error code (EINVAL) so the
    server can drop the request (§5.1) — under fail-stop it raises.
    """
    if not hasattr(vm, "net"):
        raise VMError("net_recv: no network attached to this VM")
    conn, buf, length = args[0], args[1], args[2]
    if vm.net_blocking and not vm.net.pending(conn):
        # Fleet workers park between requests instead of seeing EOF; the
        # balancer wakes them via unblock_net_waiters when it dispatches.
        # Parked before any charge so re-execution on wake is cost-neutral.
        thread.state = vm_mod.BLOCKED
        thread.wait = ("net", conn)
        return vm_mod.BLOCK_RETRY
    vm.charge(80)
    if vm.faults is not None:
        vm.faults.on_request(vm)
    extent = vm.scheme.object_extent(vm, buf)
    if extent is not None and extent < length:
        if vm.scheme.policy != violation_policy.ABORT:
            # EINVAL: any tolerant policy drops the malformed request
            # here rather than raising (raising under drop-request would
            # roll back to this very recv and loop forever).
            return (1 << 64) - 1
        vm.scheme.libc_range(vm, buf, length, True,
                             arg_bounds=_arg_bounds(vm, 1))
    data = vm.net.recv(conn, length)
    if data is None:
        return 0
    d_addr, d_ok = _range(vm, buf, len(data), True, 1)
    vm.bulk_write(d_addr, data[:d_ok])
    vm.charge(len(data) // 8)
    if vm.telemetry is not None:
        vm.telemetry.request_boundary(thread.tid, vm.counters.instructions,
                                      conn, len(data))
    if vm.forensics is not None:
        mid = getattr(vm.net, "last_recv_mid", None)
        if not vm.external_rids:
            # Single-server runs: the NetworkSim message id is the
            # request id.  Fleet workers set external_rids and stamp the
            # balancer's rid at submit time instead.
            vm.request_id = mid
            vm.request_payload = data
        vm.forensics.record(
            "request_recv", ts=vm.counters.instructions, cat="request",
            rid=vm.request_id, wid=vm.worker_id, tid=thread.tid,
            conn=conn, mid=mid, nbytes=len(data))
    if vm.scheme.policy == violation_policy.DROP_REQUEST:
        # Ask the VM to checkpoint this thread at the CALL boundary; a
        # violation while handling this request then rolls back here.
        vm._ckpt_pending = (conn, data)
        vm.charge(30)    # checkpoint cost (setjmp + state save)
    return len(data)


def _net_send(vm, thread, args):
    if not hasattr(vm, "net"):
        raise VMError("net_send: no network attached to this VM")
    conn, buf, length = args[0], args[1], args[2]
    vm.charge(80 + length // 8)
    s_addr, s_ok = _range(vm, buf, length, False, 1)
    data = vm.bulk_read(s_addr, min(s_ok, length))
    if s_ok < length:
        data += b"\x00" * (length - s_ok)   # failure-oblivious zero fill
    vm.net.send(conn, data)
    return length


def libc_natives() -> Dict[str, Callable]:
    return {
        "malloc": _malloc,
        "calloc": _calloc,
        "realloc": _realloc,
        "free": _free,
        "memcpy": _memcpy,
        "memmove": _memmove,
        "memset": _memset,
        "memcmp": _memcmp,
        "strlen": _strlen,
        "strcpy": _strcpy,
        "strncpy": _strncpy,
        "strcmp": _strcmp,
        "strncmp": _strncmp,
        "strcat": _strcat,
        "strchr": _strchr,
        "net_recv": _net_recv,
        "net_send": _net_send,
    }
