"""Loader: turns a finalized IR module into an executable program image.

Responsibilities:

* assign every function a code address (functions occupy fake 16-byte
  slots in a never-mapped code region, so data accesses to "code" fault
  while function pointers and return addresses remain first-class values);
* lay out globals — with scheme-directed padding (SGXBounds appends its
  4-byte lower-bound word, ASan wraps objects in redzones);
* resolve each function's constant pool (GlobalRef/FuncRef placeholders
  become addresses; under SGXBounds, global addresses become *tagged*).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import IRVerifyError, OutOfMemory
from repro.ir.instructions import FuncRef, GlobalRef
from repro.ir.module import Function, GlobalVar, Module
from repro.memory.address_space import PERM_RW
from repro.memory.layout import (
    CODE_BASE,
    CODE_LIMIT,
    CODE_SLOT,
    GLOBALS_BASE,
    GLOBALS_LIMIT,
    align_up,
    page_align_up,
)

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.vm.machine import VM
    from repro.vm.scheme import SchemeRuntime


class Program:
    """A loaded module: code addresses, global addresses, resolved pools."""

    def __init__(self, module: Module):
        if not all(fn.finalized for fn in module.functions.values()):
            raise IRVerifyError("module must be finalized before loading")
        self.module = module
        self.functions: Dict[str, Function] = module.functions
        self.func_addr: Dict[str, int] = {}
        self.func_by_addr: Dict[int, Function] = {}
        self.global_addr: Dict[str, int] = {}
        self.global_end: int = GLOBALS_BASE
        self.resolved_consts: Dict[str, List[object]] = {}
        # Per-function predecoded code (repro.vm.fastpath.FastCode),
        # keyed by function name.  Bound to one VM's runtime — a Program
        # is created per load, so the cache shares its lifetime.
        self._fastcache: Dict[str, object] = {}

    def address_of_function(self, name: str) -> int:
        return self.func_addr[name]

    def address_of_global(self, name: str) -> int:
        return self.global_addr[name]

    def function_at(self, address: int) -> Optional[Function]:
        return self.func_by_addr.get(address)

    def fast_for(self, fn: Function, vm: "VM"):
        """Predecoded form of ``fn``, compiled on first use and
        invalidated whenever the function's code list identity changes
        (a pass re-finalizing the module swaps ``fn.code`` out)."""
        fc = self._fastcache.get(fn.name)
        if fc is None or fc.code is not fn.code:
            from repro.vm.fastpath import compile_function
            fc = compile_function(vm, fn, self.resolved_consts[fn.name])
            self._fastcache[fn.name] = fc
        return fc


def load_program(vm: "VM", module: Module) -> Program:
    """Load ``module`` into ``vm``'s enclave under ``vm.scheme``."""
    scheme: "SchemeRuntime" = vm.scheme
    space = vm.enclave.space
    program = Program(module)

    # 1. Code addresses.
    for index, name in enumerate(module.functions):
        address = CODE_BASE + index * CODE_SLOT
        if address >= CODE_LIMIT:
            raise OutOfMemory(CODE_SLOT, "code region exhausted")
        program.func_addr[name] = address
        program.func_by_addr[address] = module.functions[name]

    # 2. Global layout (single pass; map the pages, then initialize).
    cursor = GLOBALS_BASE
    placements = []
    for var in module.globals.values():
        pre, post = scheme.global_padding(var)
        cursor = align_up(cursor + pre,
                          max(var.align, scheme.global_min_align))
        placements.append((var, cursor))
        program.global_addr[var.name] = cursor
        cursor = cursor + var.size + post
    cursor = align_up(cursor, 8)
    program.global_end = cursor
    if cursor > GLOBALS_LIMIT:
        raise OutOfMemory(cursor - GLOBALS_BASE, "globals region exhausted")
    if cursor > GLOBALS_BASE:
        space.map(GLOBALS_BASE, page_align_up(cursor - GLOBALS_BASE),
                  PERM_RW, "globals")

    # Initializers are written with tracing suspended: program load is not
    # part of measured execution.
    tracer, space.tracer = space.tracer, None
    try:
        for var, address in placements:
            if var.init:
                space.write(address, var.init)
        for var, address in placements:
            scheme.on_global_loaded(vm, address, var)
        for var, address in placements:
            for offset, ref in var.relocs:
                if isinstance(ref, GlobalRef):
                    target = scheme.resolve_global_address(
                        program.global_addr[ref.name],
                        module.globals[ref.name])
                elif isinstance(ref, FuncRef):
                    target = program.func_addr[ref.name]
                else:
                    raise IRVerifyError(
                        f"global {var.name}: bad reloc target {ref!r}")
                space.write_u64(address + offset, target)
    finally:
        space.tracer = tracer

    # 3. Constant-pool resolution.
    for name, fn in module.functions.items():
        resolved: List[object] = []
        for value in fn.consts:
            if isinstance(value, GlobalRef):
                if value.name not in program.global_addr:
                    raise IRVerifyError(f"{name}: unknown global @{value.name}")
                address = program.global_addr[value.name]
                resolved.append(scheme.resolve_global_address(
                    address, module.globals[value.name]))
            elif isinstance(value, FuncRef):
                if value.name not in program.func_addr:
                    raise IRVerifyError(f"{name}: unknown function &{value.name}")
                resolved.append(program.func_addr[value.name])
            else:
                resolved.append(value)
        program.resolved_consts[name] = resolved
    return program
