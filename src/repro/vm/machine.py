"""The virtual machine executing IR programs inside a simulated enclave.

Design notes relevant to the reproduction:

* Every load/store goes through the enclave's traced address space, so the
  cache/EPC cost model sees *all* memory traffic — including metadata
  traffic inserted by instrumentation (shadow bytes, bounds tables,
  lower-bound words).  That is precisely where the paper's results come
  from.
* Addresses are masked to 32 bits on dereference: the enclave address
  space is 32-bit and tagged pointers carry their upper bound in the high
  half (paper §3.1); hardware would translate only the low bits.
* Return addresses live in simulated stack memory, so stack-smashing
  attacks (RIPE, CVE-2013-2028) are expressible: a corrupted return slot
  either hijacks control flow (attack succeeds) or crashes.
* Threads are deterministic cooperative threads scheduled round-robin with
  a configurable instruction quantum — fine-grained enough to reproduce
  MPX's pointer/bounds-metadata race (paper §4.1, Fig. 4c).
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    BoundsViolation,
    ControlFlowHijack,
    ProgramExit,
    RequestAborted,
    SegmentationFault,
    TrapError,
    VMError,
)
from repro.ir import instructions as ops
from repro.ir.module import Function, Module
from repro.memory.layout import (
    ADDRESS_MASK,
    DEFAULT_STACK_SIZE,
    PAGE_SIZE,
    STACK_REGION_BASE,
    STACK_TOP,
    in_code_region,
)
from repro.sgx.cache import LINE_SIZE
from repro.sgx.enclave import Enclave
from repro.vm import policy as violation_policy
from repro.vm.loader import Program, load_program
from repro.vm.scheme import SchemeRuntime

M64 = (1 << 64) - 1
M32 = 0xFFFFFFFF
HI32 = M64 ^ M32
_SIGN64 = 1 << 63

#: Sentinel a native returns to mean "re-execute this call when unblocked".
BLOCK_RETRY = object()

#: Simulated-cycle cost of rolling a thread back to its request checkpoint
#: (restoring frames + re-arming return tokens; a longjmp-and-cleanup path).
RECOVERY_COST = 400


def _env_fastpath() -> bool:
    """Default for ``VM(fastpath=...)``: the ``REPRO_VM_FASTPATH``
    environment variable, ON unless explicitly disabled."""
    value = os.environ.get("REPRO_VM_FASTPATH", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


class NativeResult:
    """Native return value carrying MPX-style bounds for the result."""

    __slots__ = ("value", "bounds")

    def __init__(self, value: int, bounds: Optional[Tuple[int, int]] = None):
        self.value = value
        self.bounds = bounds


def _s64(x: int) -> int:
    return x - (1 << 64) if x & _SIGN64 else x


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise TrapError("integer division by zero")
    sa, sb = _s64(a), _s64(b)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & M64


def _srem(a: int, b: int) -> int:
    if b == 0:
        raise TrapError("integer remainder by zero")
    sa, sb = _s64(a), _s64(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & M64


def _udiv(a: int, b: int) -> int:
    if b == 0:
        raise TrapError("integer division by zero")
    return a // b


def _urem(a: int, b: int) -> int:
    if b == 0:
        raise TrapError("integer remainder by zero")
    return a % b


_BIN = {
    ops.ADD: lambda a, b: (a + b) & M64,
    ops.SUB: lambda a, b: (a - b) & M64,
    ops.MUL: lambda a, b: (a * b) & M64,
    ops.SDIV: _sdiv,
    ops.UDIV: _udiv,
    ops.SREM: _srem,
    ops.UREM: _urem,
    ops.AND: lambda a, b: a & b,
    ops.OR: lambda a, b: a | b,
    ops.XOR: lambda a, b: a ^ b,
    ops.SHL: lambda a, b: (a << (b & 63)) & M64,
    ops.LSHR: lambda a, b: a >> (b & 63),
    ops.ASHR: lambda a, b: (_s64(a) >> (b & 63)) & M64,
    ops.FADD: lambda a, b: a + b,
    ops.FSUB: lambda a, b: a - b,
    ops.FMUL: lambda a, b: a * b,
    ops.FDIV: lambda a, b: a / b if b != 0.0 else float("inf") * (1 if a >= 0 else -1),
    ops.EQ: lambda a, b: 1 if a == b else 0,
    ops.NE: lambda a, b: 1 if a != b else 0,
    ops.SLT: lambda a, b: 1 if _s64(a) < _s64(b) else 0,
    ops.SLE: lambda a, b: 1 if _s64(a) <= _s64(b) else 0,
    ops.SGT: lambda a, b: 1 if _s64(a) > _s64(b) else 0,
    ops.SGE: lambda a, b: 1 if _s64(a) >= _s64(b) else 0,
    ops.ULT: lambda a, b: 1 if a < b else 0,
    ops.ULE: lambda a, b: 1 if a <= b else 0,
    ops.UGT: lambda a, b: 1 if a > b else 0,
    ops.UGE: lambda a, b: 1 if a >= b else 0,
    ops.FEQ: lambda a, b: 1 if a == b else 0,
    ops.FNE: lambda a, b: 1 if a != b else 0,
    ops.FLT: lambda a, b: 1 if a < b else 0,
    ops.FLE: lambda a, b: 1 if a <= b else 0,
    ops.FGT: lambda a, b: 1 if a > b else 0,
    ops.FGE: lambda a, b: 1 if a >= b else 0,
}

RUNNABLE = 0
BLOCKED = 1
DONE = 2


class Frame:
    """One activation record."""

    __slots__ = ("fn", "code", "consts", "regs", "pc", "dest", "base",
                 "ret_slot", "token", "bounds")

    def __init__(self, fn: Function, consts: List[object], base: int,
                 ret_slot: int, token: int, dest: Optional[int],
                 track_bounds: bool):
        self.fn = fn
        self.code = fn.code
        self.consts = consts
        self.regs: List[object] = [0] * fn.nregs
        self.pc = 0
        self.dest = dest          # caller register receiving the return value
        self.base = base          # frame base (lowest address)
        self.ret_slot = ret_slot  # address of the return-address word
        self.token = token        # expected return-address value
        self.bounds: Optional[Dict[int, Tuple[int, int]]] = (
            {} if track_bounds else None)


class Thread:
    """A simulated thread with its own stack region and call stack."""

    __slots__ = ("tid", "frames", "state", "sp", "stack_base", "stack_top",
                 "result", "wait", "checkpoint")

    def __init__(self, tid: int, stack_base: int, stack_top: int):
        self.tid = tid
        self.frames: List[Frame] = []
        self.state = RUNNABLE
        self.sp = stack_top
        self.stack_base = stack_base
        self.stack_top = stack_top
        self.result: int = 0
        self.wait: Optional[Tuple[str, int]] = None
        self.checkpoint: Optional["RequestCheckpoint"] = None


class RequestCheckpoint:
    """Recovery point taken at a ``net_recv`` boundary (drop-request policy).

    Snapshots the thread's *control state* — call stack, register files,
    program counters, stack pointer — right before the received request is
    handed to the program.  On a violation the VM restores this state, so
    the re-executed ``net_recv`` picks up the next request and the server
    keeps serving.  Heap/global memory is deliberately NOT rolled back:
    the isolation is request-level control-flow isolation, the same
    guarantee a forked worker or longjmp-based recovery gives, not full
    memory transactionality.
    """

    __slots__ = ("frames", "sp", "conn", "request")

    def __init__(self, thread: Thread, conn: int, request: bytes):
        self.frames = [
            (f.fn, f.consts, list(f.regs), f.pc, f.dest, f.base,
             f.ret_slot, f.token,
             dict(f.bounds) if f.bounds is not None else None)
            for f in thread.frames
        ]
        self.sp = thread.sp
        self.conn = conn
        self.request = request

    def restore(self, thread: Thread) -> None:
        frames: List[Frame] = []
        for fn, consts, regs, pc, dest, base, ret_slot, token, bounds \
                in self.frames:
            frame = Frame.__new__(Frame)
            frame.fn = fn
            frame.code = fn.code
            frame.consts = consts
            frame.regs = list(regs)
            frame.pc = pc
            frame.dest = dest
            frame.base = base
            frame.ret_slot = ret_slot
            frame.token = token
            frame.bounds = dict(bounds) if bounds is not None else None
            frames.append(frame)
        thread.frames = frames
        thread.sp = self.sp
        thread.state = RUNNABLE
        thread.wait = None


class VM:
    """Interpreter over a simulated enclave, parameterized by a scheme."""

    def __init__(self, enclave: Optional[Enclave] = None,
                 scheme: Optional[SchemeRuntime] = None,
                 quantum: int = 200,
                 max_instructions: int = 2_000_000_000,
                 stack_size: int = DEFAULT_STACK_SIZE,
                 seed: Optional[int] = None,
                 telemetry=None, forensics=None,
                 fastpath: Optional[bool] = None):
        self.enclave = enclave or Enclave()
        self.space = self.enclave.space
        self.counters = self.enclave.counters
        self.scheme = scheme or SchemeRuntime()
        #: Observability hook (``repro.telemetry.Telemetry``).  None — the
        #: default — keeps every hot path telemetry-free; a disabled
        #: Telemetry object is normalized to None for the same reason.
        self.telemetry = telemetry \
            if (telemetry is not None and telemetry.enabled) else None
        if self.telemetry is not None:
            self.telemetry.attach_vm(self)
        #: Forensics hook (``repro.forensics.Forensics``); same contract
        #: as telemetry — None by default, normalized, observation-only.
        self.forensics = forensics \
            if (forensics is not None and forensics.enabled) else None
        if self.forensics is not None:
            self.forensics.attach_vm(self)
        #: Request correlation (forensics): the id/payload of the request
        #: currently being served, and whether ids come from an external
        #: dispatcher (the fleet balancer) or from NetworkSim message ids.
        self.request_id: Optional[int] = None
        self.request_payload: Optional[bytes] = None
        self.external_rids = False
        #: Fleet worker id this VM incarnates (set by EnclaveWorker).
        self.worker_id: Optional[int] = None
        #: Interpreter selection: the predecoded fast path (default) or
        #: the reference if/elif ladder.  Both are semantically identical
        #: (enforced by tests/test_vm_differential.py); None consults the
        #: REPRO_VM_FASTPATH environment variable.
        self.fastpath = _env_fastpath() if fastpath is None else bool(fastpath)
        #: Dynamic superinstruction hit counts by fusion kind, tallied
        #: only while telemetry observes the run (zero-cost-when-off);
        #: published to the metrics registry as ``vm.fastpath.<kind>``.
        self.fastpath_stats: Dict[str, int] = {}
        self.quantum = quantum
        self.max_instructions = max_instructions
        self.stack_size = stack_size
        # Seeded scheduler perturbation for chaos runs; None (the default)
        # keeps the exact deterministic round-robin order of the seed.
        self.rng: Optional[random.Random] = (
            random.Random(seed) if seed is not None else None)
        #: Fault injector (``repro.faults.FaultInjector``) hooked into the
        #: allocator and net natives; None disables injection entirely.
        self.faults = None
        #: When True, ``net_recv`` on an empty connection blocks the thread
        #: (fleet workers park between requests) instead of returning EOF.
        self.net_blocking = False
        self._ckpt_pending: Optional[Tuple[int, bytes]] = None
        self.dropped_requests = 0
        self.recovered_requests = 0
        self.program: Optional[Program] = None
        self.threads: List[Thread] = []
        self.current: Optional[Thread] = None
        self.stdout: List[str] = []
        self.exit_value: int = 0
        self._token_counter = 0x5245_5400_0000_0000
        self._next_stack = STACK_TOP
        self._executed = 0
        self.natives: Dict[str, Callable] = {}
        #: Per-call MPX bounds of native arguments (set when bounds tracking
        #: is active); libc wrappers consult it like the paper's MPX
        #: wrappers consult bounds registers.
        self.native_arg_bounds: Optional[List] = None
        self.scheme.attach(self)
        from repro.vm import libc, natives   # deferred: circular import
        self.natives.update(natives.core_natives())
        self.natives.update(libc.libc_natives())
        self.natives.update(self.scheme.natives())

    # ------------------------------------------------------------------
    # Loading and setup
    # ------------------------------------------------------------------
    def load(self, module: Module) -> Program:
        self.program = load_program(self, module)
        return self.program

    def _alloc_stack(self) -> Tuple[int, int]:
        top = self._next_stack
        base = top - self.stack_size
        if base < STACK_REGION_BASE:
            raise VMError("out of stack regions for threads")
        self.space.map(base, self.stack_size, name="stack")
        self._next_stack = base - PAGE_SIZE   # guard gap between stacks
        return base, top

    def new_thread(self, fn: Function, args: Sequence[object]) -> Thread:
        base, top = self._alloc_stack()
        thread = Thread(len(self.threads), base, top)
        self.threads.append(thread)
        self._push_frame(thread, fn, list(args), dest=None)
        return thread

    def _push_frame(self, thread: Thread, fn: Function,
                    args: Sequence[object], dest: Optional[int],
                    arg_bounds: Optional[Dict[int, Tuple[int, int]]] = None) -> Frame:
        fsize = fn.frame_size
        new_sp = thread.sp - fsize
        if new_sp < thread.stack_base:
            raise SegmentationFault(new_sp, fsize, "stack overflow")
        ret_slot = new_sp + fsize - Function.RET_SLOT
        self._token_counter += 1
        token = self._token_counter
        self.space.write_u64(ret_slot, token)
        consts = self.program.resolved_consts[fn.name]
        frame = Frame(fn, consts, new_sp, ret_slot, token, dest,
                      self.scheme.uses_register_bounds)
        nparams = len(fn.params)
        if len(args) < nparams:
            args = list(args) + [0] * (nparams - len(args))
        for i in range(nparams):
            frame.regs[i] = args[i]
        if arg_bounds and frame.bounds is not None:
            frame.bounds.update(arg_bounds)
        thread.sp = new_sp
        thread.frames.append(frame)
        if self.telemetry is not None:
            self.telemetry.function_enter(fn.name, thread.tid,
                                          self.counters.instructions)
        return frame

    # ------------------------------------------------------------------
    # Bulk memory helpers for natives (charge per cache line, not per byte)
    # ------------------------------------------------------------------
    def touch_range(self, address: int, size: int, is_write: bool) -> None:
        """Run the cache/EPC model over every line in [address, address+size)."""
        if size <= 0:
            return
        trace = self.space.tracer
        if trace is None:
            return
        first = address & ~(LINE_SIZE - 1)
        last = (address + size - 1) & ~(LINE_SIZE - 1)
        line = first
        while line <= last:
            trace(line, 1, is_write)
            line += LINE_SIZE

    def bulk_read(self, address: int, size: int) -> bytes:
        self.touch_range(address, size, False)
        tracer, self.space.tracer = self.space.tracer, None
        try:
            return self.space.read(address & ADDRESS_MASK, size)
        finally:
            self.space.tracer = tracer

    def bulk_write(self, address: int, data: bytes) -> None:
        self.touch_range(address, len(data), True)
        tracer, self.space.tracer = self.space.tracer, None
        try:
            self.space.write(address & ADDRESS_MASK, data)
        finally:
            self.space.tracer = tracer

    def charge(self, instructions: int) -> None:
        """Account for work a native performs on the simulated CPU."""
        self.counters.instructions += instructions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, entry: str = "main", args: Sequence[object] = ()) -> int:
        """Execute ``entry`` to completion; returns its result."""
        if self.program is None:
            raise VMError("no program loaded")
        fn = self.program.functions.get(entry)
        if fn is None:
            raise VMError(f"no entry function {entry!r}")
        main_thread = self.new_thread(fn, args)
        try:
            while True:
                progressed = False
                order = list(self.threads)
                rng = self.rng
                if rng is not None and len(order) > 1:
                    rng.shuffle(order)
                for thread in order:
                    if thread.state != RUNNABLE:
                        continue
                    progressed = True
                    quantum = self.quantum
                    if rng is not None and quantum >= 8:
                        jitter = quantum // 8
                        quantum += rng.randrange(-jitter, jitter + 1)
                    try:
                        self._step(thread, quantum)
                    except RequestAborted as drop:
                        self.current = None
                        if not self._recover_request(thread, drop.violation):
                            raise drop.violation from None
                    except (SegmentationFault, ControlFlowHijack,
                            TrapError) as err:
                        # Under drop-request even a late crash (the check
                        # was evaded or the scheme missed the overflow) is
                        # contained to the in-flight request.
                        self.current = None
                        if (self.scheme.policy != violation_policy.DROP_REQUEST
                                or not self._recover_request(thread, err)):
                            raise
                    if main_thread.state == DONE:
                        self.exit_value = main_thread.result
                        return self.exit_value
                if not progressed:
                    if all(t.state == DONE for t in self.threads):
                        self.exit_value = main_thread.result
                        return self.exit_value
                    raise VMError("deadlock: all live threads are blocked")
        except ProgramExit as stop:
            self.exit_value = stop.code
            return self.exit_value

    def _finish_thread(self, thread: Thread, result: object) -> None:
        thread.state = DONE
        thread.result = result
        for other in self.threads:
            if other.state == BLOCKED and other.wait == ("join", thread.tid):
                other.state = RUNNABLE
                other.wait = None

    def unblock_lock_waiters(self, address: int) -> None:
        for other in self.threads:
            if other.state == BLOCKED and other.wait == ("lock", address):
                other.state = RUNNABLE
                other.wait = None

    def unblock_net_waiters(self, conn: int) -> None:
        """Wake threads parked in a blocking ``net_recv`` on ``conn``."""
        for other in self.threads:
            if other.state == BLOCKED and other.wait == ("net", conn):
                other.state = RUNNABLE
                other.wait = None

    def _recover_request(self, thread: Thread, err: Exception) -> bool:
        """Roll ``thread`` back to its request checkpoint after ``err``.

        Returns False when no checkpoint exists (violation outside request
        handling) — the caller then re-raises fail-stop.
        """
        ckpt = thread.checkpoint
        if ckpt is None:
            return False
        ckpt.restore(thread)
        # Re-arm the return-address tokens: the dropped request may have
        # smashed the stack (e.g. CVE-2013-2028) and recovery must not die
        # on a corrupted token it is about to discard anyway.  Untraced:
        # modelled as part of the flat RECOVERY_COST below.
        tracer, self.space.tracer = self.space.tracer, None
        try:
            for frame in thread.frames:
                self.space.write_u64(frame.ret_slot, frame.token)
        finally:
            self.space.tracer = tracer
        self.charge(RECOVERY_COST)
        self.dropped_requests += 1
        self.recovered_requests += 1
        if self.telemetry is not None:
            self.telemetry.request_dropped(thread.tid,
                                           self.counters.instructions,
                                           len(thread.frames))
        if self.forensics is not None:
            self.forensics.record(
                "request_dropped", ts=self.counters.instructions,
                cat="request", rid=self.request_id, wid=self.worker_id,
                tid=thread.tid, conn=ckpt.conn,
                reason=type(err).__name__)
        net = getattr(self, "net", None)
        if net is not None and hasattr(net, "fail_request"):
            net.fail_request(ckpt.conn, ckpt.request)
        return True

    def call_stack(self, thread: Optional[Thread] = None) -> List[dict]:
        """MiniC call stack with source locations (forensics helper);
        see :func:`repro.forensics.postmortem.capture_stack`."""
        from repro.forensics.postmortem import capture_stack
        return capture_stack(self, thread=thread)

    def _corrupted_return(self, actual: int) -> None:
        target = actual & ADDRESS_MASK
        if in_code_region(target) and self.program.function_at(target):
            raise ControlFlowHijack(target, "corrupted return address")
        raise SegmentationFault(target, 8, "return to non-code address")

    def _step(self, thread: Thread, quantum: int) -> None:
        """Run ``thread`` for up to ``quantum`` instructions on the
        selected interpreter.  Everything — ``run()``, the fleet's
        ``EnclaveWorker`` tick loop — funnels through here."""
        if self.fastpath:
            self._run_fast(thread, quantum)
        else:
            self._run_reference(thread, quantum)

    def _run_fast(self, thread: Thread, quantum: int) -> None:
        """Predecoded handler dispatch (see ``repro.vm.fastpath``).

        The outer structure mirrors ``_run_reference`` exactly: one
        telemetry segment per frame activation, ``frame.pc`` written back
        only when the frame didn't yield, the same up-front instruction
        budget.  The inner loop runs fused superinstructions while the
        remaining quantum can absorb the longest one, then finishes the
        slice on unfused handlers so thread switches land on the exact
        reference instruction boundaries.
        """
        self.current = thread
        program = self.program
        telem = self.telemetry
        counters = self.counters

        self._executed += quantum   # upper bound; cheap budget check
        if self._executed > self.max_instructions:
            raise VMError(
                f"instruction budget exceeded ({self.max_instructions}); "
                f"likely an infinite loop in the simulated program")

        fast_for = program.fast_for
        while quantum > 0 and thread.state == RUNNABLE:
            frame = thread.frames[-1]
            fc = fast_for(frame.fn, self)
            handlers = fc.handlers
            costs = fc.costs
            plain = fc.plain
            regs = frame.regs
            pc = frame.pc
            switch = False
            if telem is not None:
                seg_snap = telem.functions.begin(counters)
            while quantum >= 3:     # fastpath.FUSE_MAX
                npc = handlers[pc](frame, regs, thread)
                quantum -= costs[pc]
                if npc >= 0:
                    pc = npc
                else:
                    switch = True
                    break
            if not switch:
                while quantum > 0:
                    npc = plain[pc](frame, regs, thread)
                    quantum -= 1
                    if npc >= 0:
                        pc = npc
                    else:
                        switch = True
                        break
            if telem is not None:
                telem.functions.end(frame.fn.name, counters, seg_snap)
            if not switch:
                frame.pc = pc
        self.current = None

    # The reference dispatch loop.  Deliberately one big function: locals
    # are the fastest variable class in CPython and this was the
    # simulator's only hot path before the predecoded fast path existed;
    # it remains the executable specification the fast path is diffed
    # against (tests/test_vm_differential.py).
    def _run_reference(self, thread: Thread, quantum: int) -> None:   # noqa: C901
        self.current = thread
        counters = self.counters
        space = self.space
        binops = _BIN
        program = self.program
        natives = self.natives
        telem = self.telemetry

        self._executed += quantum   # upper bound; cheap budget check
        if self._executed > self.max_instructions:
            raise VMError(
                f"instruction budget exceeded ({self.max_instructions}); "
                f"likely an infinite loop in the simulated program")

        while quantum > 0 and thread.state == RUNNABLE:
            frame = thread.frames[-1]
            code = frame.code
            consts = frame.consts
            regs = frame.regs
            pc = frame.pc
            switch = False
            if telem is not None:
                seg_snap = telem.functions.begin(counters)
            while quantum > 0:
                ins = code[pc]
                op = ins.op
                counters.instructions += 1
                quantum -= 1

                fn2 = binops.get(op)
                if fn2 is not None:
                    a = ins.a
                    b = ins.b
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    bv = regs[b] if b >= 0 else consts[-b - 1]
                    regs[ins.dest] = fn2(av, bv)
                    pc += 1
                    continue

                if op == ops.LOAD:
                    a = ins.a
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    addr = av & M32
                    if ins.is_float:
                        value = space.read_f64(addr)
                    else:
                        size = ins.size
                        value = space.read_uint(addr, size)
                        if ins.signed and size < 8:
                            sign = 1 << (size * 8 - 1)
                            if value & sign:
                                value = (value - (sign << 1)) & M64
                    regs[ins.dest] = value
                    pc += 1
                    continue

                if op == ops.STORE:
                    a = ins.a
                    b = ins.b
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    bv = regs[b] if b >= 0 else consts[-b - 1]
                    addr = av & M32
                    if ins.is_float:
                        space.write_f64(addr, bv)
                    else:
                        space.write_uint(addr, bv, ins.size)
                    pc += 1
                    continue

                if op == ops.GEP:
                    a = ins.a
                    base = regs[a] if a >= 0 else consts[-a - 1]
                    b = ins.b
                    if b is not None:
                        idx = regs[b] if b >= 0 else consts[-b - 1]
                        value = base + idx * ins.size + ins.c
                    else:
                        value = base + ins.c
                    if ins.clamp:
                        # §3.2's 32-bit-confined arithmetic: on x86 this
                        # lowers to a 32-bit lea plus one merge op.
                        counters.instructions += 1
                        value = (base & HI32) | (value & M32)
                    else:
                        value &= M64
                    regs[ins.dest] = value
                    bnd = frame.bounds
                    if bnd is not None and a >= 0 and a in bnd:
                        bnd[ins.dest] = bnd[a]
                    pc += 1
                    continue

                if op == ops.BR:
                    counters.branches += 1
                    a = ins.a
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    pc = ins.t1 if av else ins.t2
                    continue

                if op == ops.JMP:
                    counters.branches += 1
                    pc = ins.t1
                    continue

                if op == ops.MOV:
                    a = ins.a
                    regs[ins.dest] = regs[a] if a >= 0 else consts[-a - 1]
                    bnd = frame.bounds
                    if bnd is not None and a >= 0 and a in bnd:
                        bnd[ins.dest] = bnd[a]
                    pc += 1
                    continue

                if op == ops.SELECT:
                    a, b, c = ins.a, ins.b, ins.c
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    chosen = b if av else c
                    regs[ins.dest] = regs[chosen] if chosen >= 0 else consts[-chosen - 1]
                    pc += 1
                    continue

                if op == ops.CALL:
                    counters.calls += 1
                    args = ins.args
                    values = [regs[x] if x >= 0 else consts[-x - 1] for x in args]
                    name = ins.name
                    if name is not None:
                        callee = program.functions.get(name)
                        if callee is None:
                            native = natives.get(name)
                            if native is None:
                                raise VMError(f"unknown function {name!r}")
                            if frame.bounds is not None:
                                self.native_arg_bounds = [
                                    frame.bounds.get(x) if x >= 0 else None
                                    for x in args]
                            if telem is None:
                                result = native(self, thread, values)
                            else:
                                t0 = counters.instructions
                                result = native(self, thread, values)
                                telem.native_call(name, thread.tid, t0,
                                                  counters.instructions)
                            if result is BLOCK_RETRY:
                                frame.pc = pc   # re-execute the call on wake
                                switch = True
                                break
                            if self._ckpt_pending is not None:
                                # net_recv asked for a request checkpoint.
                                # Snapshot at the CALL itself (before the
                                # result lands in a register): restoring
                                # re-executes net_recv, which then serves
                                # the *next* request.
                                ck_conn, ck_raw = self._ckpt_pending
                                self._ckpt_pending = None
                                frame.pc = pc
                                thread.checkpoint = RequestCheckpoint(
                                    thread, ck_conn, ck_raw)
                            if type(result) is NativeResult:
                                if ins.dest is not None:
                                    regs[ins.dest] = result.value
                                    if frame.bounds is not None and result.bounds:
                                        frame.bounds[ins.dest] = result.bounds
                            elif ins.dest is not None:
                                regs[ins.dest] = result if result is not None else 0
                            if thread.state != RUNNABLE or thread.frames[-1] is not frame:
                                frame.pc = pc + 1
                                switch = True
                                break
                            pc += 1
                            continue
                    else:
                        a = ins.a
                        target = (regs[a] if a >= 0 else consts[-a - 1]) & ADDRESS_MASK
                        callee = program.function_at(target)
                        if callee is None:
                            raise SegmentationFault(target, 1, "indirect call to non-code")
                    arg_bounds = None
                    if frame.bounds is not None:
                        arg_bounds = {}
                        for i, x in enumerate(args):
                            if x >= 0 and x in frame.bounds:
                                arg_bounds[i] = frame.bounds[x]
                    frame.pc = pc + 1
                    self._push_frame(thread, callee, values, ins.dest, arg_bounds)
                    switch = True
                    break

                if op == ops.RET:
                    a = ins.a
                    value = 0
                    if a is not None:
                        value = regs[a] if a >= 0 else consts[-a - 1]
                    actual = space.read_u64(frame.ret_slot)
                    if actual != frame.token:
                        self._corrupted_return(actual)
                    ret_bounds = None
                    if frame.bounds is not None and a is not None and a >= 0:
                        ret_bounds = frame.bounds.get(a)
                    thread.frames.pop()
                    if telem is not None:
                        telem.function_exit(frame.fn.name, thread.tid,
                                            counters.instructions)
                    thread.sp = frame.base + frame.fn.frame_size
                    if not thread.frames:
                        self._finish_thread(thread, value)
                        switch = True
                        break
                    parent = thread.frames[-1]
                    if frame.dest is not None:
                        parent.regs[frame.dest] = value
                        if parent.bounds is not None and ret_bounds:
                            parent.bounds[frame.dest] = ret_bounds
                    switch = True
                    break

                if op == ops.ALLOCA:
                    regs[ins.dest] = frame.base + ins.c
                    pc += 1
                    continue

                if op == ops.TRUNC:
                    a = ins.a
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    regs[ins.dest] = av & ((1 << (ins.size * 8)) - 1)
                    pc += 1
                    continue

                if op == ops.SEXT:
                    a = ins.a
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    bits = ins.size * 8
                    sign = 1 << (bits - 1)
                    av &= (1 << bits) - 1
                    if av & sign:
                        av = (av - (1 << bits)) & M64
                    regs[ins.dest] = av
                    pc += 1
                    continue

                if op == ops.SITOFP:
                    a = ins.a
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    regs[ins.dest] = float(_s64(av))
                    pc += 1
                    continue

                if op == ops.FPTOSI:
                    a = ins.a
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    regs[ins.dest] = int(av) & M64
                    pc += 1
                    continue

                if op == ops.FNEG:
                    a = ins.a
                    av = regs[a] if a >= 0 else consts[-a - 1]
                    regs[ins.dest] = -av
                    pc += 1
                    continue

                if op == ops.ATOMICRMW:
                    a, b = ins.a, ins.b
                    addr = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                    val = regs[b] if b >= 0 else consts[-b - 1]
                    old = space.read_uint(addr, ins.size)
                    if ins.name == "add":
                        space.write_uint(addr, (old + val) & M64, ins.size)
                    elif ins.name == "xchg":
                        space.write_uint(addr, val, ins.size)
                    elif ins.name == "sub":
                        space.write_uint(addr, (old - val) & M64, ins.size)
                    else:
                        raise VMError(f"unknown atomicrmw kind {ins.name!r}")
                    regs[ins.dest] = old
                    pc += 1
                    continue

                if op == ops.CMPXCHG:
                    a, b, c = ins.a, ins.b, ins.c
                    addr = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                    expected = regs[b] if b >= 0 else consts[-b - 1]
                    desired = regs[c] if c >= 0 else consts[-c - 1]
                    old = space.read_uint(addr, ins.size)
                    if old == expected:
                        space.write_uint(addr, desired, ins.size)
                    regs[ins.dest] = old
                    pc += 1
                    continue

                if op == ops.BNDMK:
                    a, b = ins.a, ins.b
                    base = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                    size = regs[b] if b >= 0 else consts[-b - 1]
                    if frame.bounds is not None:
                        frame.bounds[ins.dest] = (base, base + size)
                    pc += 1
                    continue

                if op == ops.BNDCL:
                    # MPX bound checks are micro-coded multi-uop
                    # instructions (Oleksenko et al., "Intel MPX
                    # Explained"); ins.c additionally carries the
                    # pass-computed bounds-register spill cost (only 4
                    # architectural bounds registers exist).
                    counters.instructions += 1 + (ins.c or 0)
                    counters.bounds_checks += 1
                    bnd = frame.bounds.get(ins.dest) if frame.bounds is not None else None
                    if bnd is not None:
                        a = ins.a
                        val = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                        if val < bnd[0]:
                            self.scheme.handle_violation(self, BoundsViolation(
                                "mpx", val, bnd[0], bnd[1], access="read",
                                what="bndcl"))
                    pc += 1
                    continue

                if op == ops.BNDCU:
                    counters.instructions += 1 + (ins.c or 0)
                    counters.bounds_checks += 1
                    bnd = frame.bounds.get(ins.dest) if frame.bounds is not None else None
                    if bnd is not None:
                        a = ins.a
                        val = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                        if val + ins.size > bnd[1]:
                            self.scheme.handle_violation(self, BoundsViolation(
                                "mpx", val, bnd[0], bnd[1], size=ins.size,
                                access="read", what="bndcu"))
                    pc += 1
                    continue

                if op == ops.BNDLDX:
                    a = ins.a
                    slot = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                    # Two-level BD/BT translation plus the compiler's
                    # bounds-register spill pressure: several extra uops
                    # beyond the memory traffic charged below.
                    counters.instructions += 4
                    if frame.bounds is not None:
                        loaded = self.scheme.bt_load(self, slot)
                        if loaded is not None:
                            frame.bounds[ins.dest] = loaded
                        else:
                            frame.bounds.pop(ins.dest, None)
                    pc += 1
                    continue

                if op == ops.BNDSTX:
                    a = ins.a
                    slot = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                    counters.instructions += 4
                    if frame.bounds is not None:
                        self.scheme.bt_store(self, slot,
                                             frame.bounds.get(ins.dest))
                    pc += 1
                    continue

                if op == ops.TRAP:
                    raise TrapError(ins.name or "trap")

                if op == ops.NOP:
                    pc += 1
                    continue

                raise VMError(f"unhandled opcode {op} ({ops.OP_NAMES.get(op)})")

            if telem is not None:
                telem.functions.end(frame.fn.name, counters, seg_snap)
            if not switch:
                frame.pc = pc
        self.current = None

    # ------------------------------------------------------------------
    def output(self) -> str:
        """Everything the program printed."""
        return "".join(self.stdout)


def run_module(module: Module, scheme: Optional[SchemeRuntime] = None,
               enclave: Optional[Enclave] = None, entry: str = "main",
               args: Sequence[object] = (), **vm_kwargs) -> Tuple[int, VM]:
    """Convenience: load and run a module, returning (exit value, vm)."""
    vm = VM(enclave=enclave, scheme=scheme, **vm_kwargs)
    vm.load(module)
    result = vm.run(entry, args)
    return result, vm
