"""Predecoded handler dispatch — the interpreter's fast path.

:func:`compile_function` turns one finalized IR function into a flat list
of *bound handler closures*: operands are resolved once per instruction
(register index vs constant-pool value), per-op behaviour comes from a
registry of closure makers instead of the reference loop's 300-line
if/elif ladder, and the hottest instruction pairs observed in profiles
are fused into superinstructions — GEP+LOAD, GEP+STORE, CMP+BR and MPX's
BNDCL+BNDCU+access triple.

Identity contract (enforced by ``tests/test_vm_differential.py``): a
fast-path run is indistinguishable from a reference run — byte-identical
stdout, identical :class:`~repro.sgx.counters.PerfCounters` at every
observable point (native calls, traced memory accesses, violations),
identical violation/forensics records, identical thread interleavings.
The rules that make this hold:

* every handler advances ``counters.instructions`` exactly as the
  reference loop would *before* any observable side effect — a traced
  memory access, a native call, a raised violation — so timestamps and
  EPC/cache accounting line up to the instruction;
* the dispatch loop charges a fused handler its full quantum cost and
  never starts a superinstruction that does not fit in the remaining
  quantum, so cooperative thread switches land on the same instruction
  boundaries as the reference scheduler;
* every code index keeps a valid standalone handler — branches, request
  checkpoints and ``BLOCK_RETRY`` resumes may land *inside* a fused
  region, in which case the tail instructions simply execute unfused.

Handler calling convention: ``handler(frame, regs, thread) -> next_pc``,
where a negative result means "yield to the outer loop" (call, return,
block, thread exit) with ``frame.pc`` already stored.  Fused handlers
occupy the *first* index of their region in ``FastCode.handlers`` with
their length recorded in ``FastCode.costs``; ``FastCode.plain`` holds the
unfused handler for every index.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.errors import BoundsViolation, SegmentationFault, TrapError, VMError
from repro.ir import instructions as ops
from repro.ir.instructions import CMP_OPS
from repro.memory.layout import ADDRESS_MASK, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE
from repro.vm.machine import (
    _BIN,
    _s64,
    BLOCK_RETRY,
    HI32,
    M32,
    M64,
    NativeResult,
    RequestCheckpoint,
    RUNNABLE,
)

_UINT = {1: struct.Struct("<B"), 2: struct.Struct("<H"),
         4: struct.Struct("<I"), 8: struct.Struct("<Q")}
_F64 = struct.Struct("<d")

#: Longest superinstruction, in IR instructions (quantum units).  The
#: dispatch loop falls back to unfused execution once the remaining
#: quantum drops below this, so fused handlers never overdraw a slice.
FUSE_MAX = 3

Handler = Callable[[object, list, object], int]


class FastCode:
    """Predecoded form of one function, bound to one VM's runtime."""

    __slots__ = ("handlers", "costs", "plain", "code", "fusion_sites")

    def __init__(self, handlers: List[Handler], costs: List[int],
                 plain: List[Handler], code: list,
                 fusion_sites: Dict[str, int]):
        self.handlers = handlers
        self.costs = costs
        self.plain = plain
        #: The exact ``fn.code`` list this was compiled from; the loader's
        #: cache re-predecodes whenever a pass swaps the code list out.
        self.code = code
        #: Static superinstruction sites by kind (fused at predecode).
        self.fusion_sites = fusion_sites


# ---------------------------------------------------------------------------
# Inlined memory accessors.  The common access — within one page, page
# already materialized, ordinary permissions — skips the read_uint →
# read_uN → read → _page_for call chain and the intermediate bytes copy.
# Anything unusual (page crossing, guard/unmapped/protected page, a page
# not yet materialized) falls back to the AddressSpace slow path, which
# raises the same faults with the same messages.  The tracer fires
# exactly once per access either way: the fast branch only runs after
# every fallback condition has been ruled out, and it reads
# ``space.tracer`` per access because bulk natives swap it out.
# PERM_READ=1 / PERM_RW=3 are frozen constants of the memory layout.
# ---------------------------------------------------------------------------

def _fast_reader(space, size: int) -> Callable[[int], int]:
    pages = space._pages
    perms = space._perms
    read_uint = space.read_uint
    limit = PAGE_SIZE - size
    unpack_from = _UINT[size].unpack_from
    def rd(addr):
        if addr & PAGE_MASK <= limit:
            idx = addr >> PAGE_SHIFT
            pv = perms.get(idx)
            if pv == 3 or pv == 1:
                page = pages.get(idx)
                if page is not None:
                    tr = space.tracer
                    if tr is not None:
                        tr(addr, size, False)
                    return unpack_from(page, addr & PAGE_MASK)[0]
        return read_uint(addr, size)
    return rd


def _fast_reader_f64(space) -> Callable[[int], float]:
    pages = space._pages
    perms = space._perms
    read_f64 = space.read_f64
    limit = PAGE_SIZE - 8
    unpack_from = _F64.unpack_from
    def rd(addr):
        if addr & PAGE_MASK <= limit:
            idx = addr >> PAGE_SHIFT
            pv = perms.get(idx)
            if pv == 3 or pv == 1:
                page = pages.get(idx)
                if page is not None:
                    tr = space.tracer
                    if tr is not None:
                        tr(addr, 8, False)
                    return unpack_from(page, addr & PAGE_MASK)[0]
        return read_f64(addr)
    return rd


def _fast_writer(space, size: int) -> Callable[[int, int], None]:
    pages = space._pages
    perms = space._perms
    write_uint = space.write_uint
    limit = PAGE_SIZE - size
    pack_into = _UINT[size].pack_into
    mask = (1 << (size * 8)) - 1
    def wr(addr, value):
        if addr & PAGE_MASK <= limit:
            idx = addr >> PAGE_SHIFT
            if perms.get(idx) == 3:
                page = pages.get(idx)
                if page is not None:
                    tr = space.tracer
                    if tr is not None:
                        tr(addr, size, True)
                    pack_into(page, addr & PAGE_MASK, value & mask)
                    return
        write_uint(addr, value, size)
    return wr


def _fast_writer_f64(space) -> Callable[[int, float], None]:
    pages = space._pages
    perms = space._perms
    write_f64 = space.write_f64
    limit = PAGE_SIZE - 8
    pack_into = _F64.pack_into
    def wr(addr, value):
        if addr & PAGE_MASK <= limit:
            idx = addr >> PAGE_SHIFT
            if perms.get(idx) == 3:
                page = pages.get(idx)
                if page is not None:
                    tr = space.tracer
                    if tr is not None:
                        tr(addr, 8, True)
                    pack_into(page, addr & PAGE_MASK, value)
                    return
        write_f64(addr, value)
    return wr


class _MemCache:
    """Per-compile cache of the inlined accessors (one closure per
    (space, size, direction), shared by every handler that needs it)."""

    __slots__ = ("space", "_readers", "_writers", "_rf64", "_wf64")

    def __init__(self, space):
        self.space = space
        self._readers: Dict[int, Callable] = {}
        self._writers: Dict[int, Callable] = {}
        self._rf64 = None
        self._wf64 = None

    def reader(self, size: int) -> Callable[[int], int]:
        rd = self._readers.get(size)
        if rd is None:
            rd = self._readers[size] = _fast_reader(self.space, size)
        return rd

    def writer(self, size: int) -> Callable[[int, int], None]:
        wr = self._writers.get(size)
        if wr is None:
            wr = self._writers[size] = _fast_writer(self.space, size)
        return wr

    def reader_f64(self) -> Callable[[int], float]:
        if self._rf64 is None:
            self._rf64 = _fast_reader_f64(self.space)
        return self._rf64

    def writer_f64(self) -> Callable[[int, float], None]:
        if self._wf64 is None:
            self._wf64 = _fast_writer_f64(self.space)
        return self._wf64


# ---------------------------------------------------------------------------
# Plain (one-instruction) handler makers.  Each maker resolves operands
# once and returns a closure; ``npc`` is the baked fall-through index.
# ---------------------------------------------------------------------------

def _make_binop(ins, consts, npc, counters):
    op = ins.op
    dest, a, b = ins.dest, ins.a, ins.b
    # The hottest integer ops are inlined (no per-execution fn2 call);
    # everything else goes through the same _BIN lambdas the reference
    # loop uses, keeping trap/NaN semantics trivially identical.
    if a >= 0 and b >= 0:
        if op == ops.ADD:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = (regs[a] + regs[b]) & M64
                return npc
            return h
        if op == ops.SUB:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = (regs[a] - regs[b]) & M64
                return npc
            return h
        if op == ops.MUL:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = (regs[a] * regs[b]) & M64
                return npc
            return h
        fn2 = _BIN[op]
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = fn2(regs[a], regs[b])
            return npc
        return h
    if a >= 0:
        bv = consts[-b - 1]
        if op == ops.ADD:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = (regs[a] + bv) & M64
                return npc
            return h
        if op == ops.SUB:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = (regs[a] - bv) & M64
                return npc
            return h
        if op == ops.MUL:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = (regs[a] * bv) & M64
                return npc
            return h
        fn2 = _BIN[op]
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = fn2(regs[a], bv)
            return npc
        return h
    av = consts[-a - 1]
    fn2 = _BIN[op]
    if b >= 0:
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = fn2(av, regs[b])
            return npc
        return h
    bv = consts[-b - 1]
    def h(frame, regs, thread):
        # Not folded at predecode: division by a zero constant must trap
        # at execution time, exactly when the reference loop would.
        counters.instructions += 1
        regs[dest] = fn2(av, bv)
        return npc
    return h


def _make_load(ins, consts, npc, counters, mem):
    a, dest, size = ins.a, ins.dest, ins.size
    read_uint = mem.reader(size)
    if ins.is_float:
        read_f64 = mem.reader_f64()
        if a >= 0:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = read_f64(regs[a] & M32)
                return npc
            return h
        addr = consts[-a - 1] & M32
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = read_f64(addr)
            return npc
        return h
    if ins.signed and size < 8:
        sign = 1 << (size * 8 - 1)
        wrap = sign << 1
        if a >= 0:
            def h(frame, regs, thread):
                counters.instructions += 1
                value = read_uint(regs[a] & M32)
                regs[dest] = (value - wrap) & M64 if value & sign else value
                return npc
            return h
        addr = consts[-a - 1] & M32
        def h(frame, regs, thread):
            counters.instructions += 1
            value = read_uint(addr)
            regs[dest] = (value - wrap) & M64 if value & sign else value
            return npc
        return h
    if a >= 0:
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = read_uint(regs[a] & M32)
            return npc
        return h
    addr = consts[-a - 1] & M32
    def h(frame, regs, thread):
        counters.instructions += 1
        regs[dest] = read_uint(addr)
        return npc
    return h


def _make_store(ins, consts, npc, counters, mem):
    a, b, size = ins.a, ins.b, ins.size
    if ins.is_float:
        write_f64 = mem.writer_f64()
        if a >= 0 and b >= 0:
            def h(frame, regs, thread):
                counters.instructions += 1
                write_f64(regs[a] & M32, regs[b])
                return npc
            return h
        def h(frame, regs, thread):
            counters.instructions += 1
            av = regs[a] if a >= 0 else consts[-a - 1]
            bv = regs[b] if b >= 0 else consts[-b - 1]
            write_f64(av & M32, bv)
            return npc
        return h
    write_uint = mem.writer(size)
    if a >= 0 and b >= 0:
        def h(frame, regs, thread):
            counters.instructions += 1
            write_uint(regs[a] & M32, regs[b])
            return npc
        return h
    if a >= 0:
        bv = consts[-b - 1]
        def h(frame, regs, thread):
            counters.instructions += 1
            write_uint(regs[a] & M32, bv)
            return npc
        return h
    addr = consts[-a - 1] & M32
    if b >= 0:
        def h(frame, regs, thread):
            counters.instructions += 1
            write_uint(addr, regs[b])
            return npc
        return h
    bv = consts[-b - 1]
    def h(frame, regs, thread):
        counters.instructions += 1
        write_uint(addr, bv)
        return npc
    return h


def _make_gep(ins, consts, npc, counters, track_bounds):
    a, b, c, size, clamp, dest = ins.a, ins.b, ins.c, ins.size, \
        ins.clamp, ins.dest
    # §3.2's clamped arithmetic charges the extra merge op, exactly like
    # the reference loop's `counters.instructions += 1` inside the branch.
    inc = 2 if clamp else 1
    if b is None:
        if a >= 0 and not clamp and not track_bounds:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = (regs[a] + c) & M64
                return npc
            return h
        def h(frame, regs, thread):
            counters.instructions += inc
            base = regs[a] if a >= 0 else consts[-a - 1]
            value = base + c
            if clamp:
                value = (base & HI32) | (value & M32)
            else:
                value &= M64
            regs[dest] = value
            if track_bounds:
                bnd = frame.bounds
                if bnd is not None and a >= 0 and a in bnd:
                    bnd[dest] = bnd[a]
            return npc
        return h
    if a >= 0 and b >= 0 and not clamp and not track_bounds:
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = (regs[a] + regs[b] * size + c) & M64
            return npc
        return h
    def h(frame, regs, thread):
        counters.instructions += inc
        base = regs[a] if a >= 0 else consts[-a - 1]
        idx = regs[b] if b >= 0 else consts[-b - 1]
        value = base + idx * size + c
        if clamp:
            value = (base & HI32) | (value & M32)
        else:
            value &= M64
        regs[dest] = value
        if track_bounds:
            bnd = frame.bounds
            if bnd is not None and a >= 0 and a in bnd:
                bnd[dest] = bnd[a]
        return npc
    return h


def _make_br(ins, consts, counters):
    a, t1, t2 = ins.a, ins.t1, ins.t2
    if a >= 0:
        def h(frame, regs, thread):
            counters.instructions += 1
            counters.branches += 1
            return t1 if regs[a] else t2
        return h
    av = consts[-a - 1]
    target = t1 if av else t2
    def h(frame, regs, thread):
        counters.instructions += 1
        counters.branches += 1
        return target
    return h


def _make_jmp(ins, counters):
    t1 = ins.t1
    def h(frame, regs, thread):
        counters.instructions += 1
        counters.branches += 1
        return t1
    return h


def _make_mov(ins, consts, npc, counters, track_bounds):
    a, dest = ins.a, ins.dest
    if a >= 0:
        if not track_bounds:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = regs[a]
                return npc
            return h
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = regs[a]
            bnd = frame.bounds
            if bnd is not None and a in bnd:
                bnd[dest] = bnd[a]
            return npc
        return h
    av = consts[-a - 1]
    def h(frame, regs, thread):
        counters.instructions += 1
        regs[dest] = av
        return npc
    return h


def _make_select(ins, consts, npc, counters):
    a, b, c, dest = ins.a, ins.b, ins.c, ins.dest
    def h(frame, regs, thread):
        counters.instructions += 1
        av = regs[a] if a >= 0 else consts[-a - 1]
        chosen = b if av else c
        regs[dest] = regs[chosen] if chosen >= 0 else consts[-chosen - 1]
        return npc
    return h


def _make_alloca(ins, npc, counters):
    dest, c = ins.dest, ins.c
    def h(frame, regs, thread):
        counters.instructions += 1
        regs[dest] = frame.base + c
        return npc
    return h


def _make_unary(ins, consts, npc, counters):
    op, a, dest = ins.op, ins.a, ins.dest
    if op == ops.TRUNC:
        mask = (1 << (ins.size * 8)) - 1
        if a >= 0:
            def h(frame, regs, thread):
                counters.instructions += 1
                regs[dest] = regs[a] & mask
                return npc
            return h
        av = consts[-a - 1]
        def h(frame, regs, thread):
            counters.instructions += 1
            regs[dest] = av & mask
            return npc
        return h
    if op == ops.SEXT:
        bits = ins.size * 8
        sign = 1 << (bits - 1)
        mask = (1 << bits) - 1
        wrap = 1 << bits
        def h(frame, regs, thread):
            counters.instructions += 1
            av = (regs[a] if a >= 0 else consts[-a - 1]) & mask
            regs[dest] = (av - wrap) & M64 if av & sign else av
            return npc
        return h
    if op == ops.SITOFP:
        def h(frame, regs, thread):
            counters.instructions += 1
            av = regs[a] if a >= 0 else consts[-a - 1]
            regs[dest] = float(_s64(av))
            return npc
        return h
    if op == ops.FPTOSI:
        def h(frame, regs, thread):
            counters.instructions += 1
            av = regs[a] if a >= 0 else consts[-a - 1]
            regs[dest] = int(av) & M64
            return npc
        return h
    # FNEG
    def h(frame, regs, thread):
        counters.instructions += 1
        av = regs[a] if a >= 0 else consts[-a - 1]
        regs[dest] = -av
        return npc
    return h


def _make_atomicrmw(ins, consts, npc, counters, mem):
    a, b, dest, size, kind = ins.a, ins.b, ins.dest, ins.size, ins.name
    read_uint = mem.reader(size)
    write_uint = mem.writer(size)
    def h(frame, regs, thread):
        counters.instructions += 1
        addr = (regs[a] if a >= 0 else consts[-a - 1]) & M32
        val = regs[b] if b >= 0 else consts[-b - 1]
        old = read_uint(addr)
        if kind == "add":
            write_uint(addr, (old + val) & M64)
        elif kind == "xchg":
            write_uint(addr, val)
        elif kind == "sub":
            write_uint(addr, (old - val) & M64)
        else:
            # Mirrors the reference ladder: the (traced) read of the old
            # value happens before the unknown-kind diagnostic.
            raise VMError(f"unknown atomicrmw kind {kind!r}")
        regs[dest] = old
        return npc
    return h


def _make_cmpxchg(ins, consts, npc, counters, mem):
    a, b, c, dest, size = ins.a, ins.b, ins.c, ins.dest, ins.size
    read_uint = mem.reader(size)
    write_uint = mem.writer(size)
    def h(frame, regs, thread):
        counters.instructions += 1
        addr = (regs[a] if a >= 0 else consts[-a - 1]) & M32
        expected = regs[b] if b >= 0 else consts[-b - 1]
        desired = regs[c] if c >= 0 else consts[-c - 1]
        old = read_uint(addr)
        if old == expected:
            write_uint(addr, desired)
        regs[dest] = old
        return npc
    return h


def _make_bndmk(ins, consts, npc, counters):
    a, b, dest = ins.a, ins.b, ins.dest
    def h(frame, regs, thread):
        counters.instructions += 1
        base = (regs[a] if a >= 0 else consts[-a - 1]) & M32
        size = regs[b] if b >= 0 else consts[-b - 1]
        if frame.bounds is not None:
            frame.bounds[dest] = (base, base + size)
        return npc
    return h


def _make_bndcl(ins, consts, npc, counters, vm):
    a, breg = ins.a, ins.dest
    inc = 2 + (ins.c or 0)   # loop-top 1 + micro-coded 1 + spill cost
    scheme = vm.scheme
    def h(frame, regs, thread):
        counters.instructions += inc
        counters.bounds_checks += 1
        fb = frame.bounds
        if fb is not None:
            bnd = fb.get(breg)
            if bnd is not None:
                val = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                if val < bnd[0]:
                    scheme.handle_violation(vm, BoundsViolation(
                        "mpx", val, bnd[0], bnd[1], access="read",
                        what="bndcl"))
        return npc
    return h


def _make_bndcu(ins, consts, npc, counters, vm):
    a, breg, size = ins.a, ins.dest, ins.size
    inc = 2 + (ins.c or 0)
    scheme = vm.scheme
    def h(frame, regs, thread):
        counters.instructions += inc
        counters.bounds_checks += 1
        fb = frame.bounds
        if fb is not None:
            bnd = fb.get(breg)
            if bnd is not None:
                val = (regs[a] if a >= 0 else consts[-a - 1]) & M32
                if val + size > bnd[1]:
                    scheme.handle_violation(vm, BoundsViolation(
                        "mpx", val, bnd[0], bnd[1], size=size,
                        access="read", what="bndcu"))
        return npc
    return h


def _make_bndldx(ins, consts, npc, counters, vm):
    a, dest = ins.a, ins.dest
    scheme = vm.scheme
    def h(frame, regs, thread):
        counters.instructions += 5   # loop-top 1 + BD/BT walk 4
        slot = (regs[a] if a >= 0 else consts[-a - 1]) & M32
        fb = frame.bounds
        if fb is not None:
            loaded = scheme.bt_load(vm, slot)
            if loaded is not None:
                fb[dest] = loaded
            else:
                fb.pop(dest, None)
        return npc
    return h


def _make_bndstx(ins, consts, npc, counters, vm):
    a, dest = ins.a, ins.dest
    scheme = vm.scheme
    def h(frame, regs, thread):
        counters.instructions += 5
        slot = (regs[a] if a >= 0 else consts[-a - 1]) & M32
        fb = frame.bounds
        if fb is not None:
            scheme.bt_store(vm, slot, fb.get(dest))
        return npc
    return h


def _make_trap(ins, counters):
    message = ins.name or "trap"
    def h(frame, regs, thread):
        counters.instructions += 1
        raise TrapError(message)
    return h


def _make_nop(npc, counters):
    def h(frame, regs, thread):
        counters.instructions += 1
        return npc
    return h


def _make_raise(message, counters):
    def h(frame, regs, thread):
        counters.instructions += 1
        raise VMError(message)
    return h


# ---------------------------------------------------------------------------
# Calls and returns (the yield points of the dispatch loop).
# ---------------------------------------------------------------------------

def _arg_plan(args, consts):
    """Bake each argument operand to (is_register, index_or_value)."""
    return tuple((True, x) if x >= 0 else (False, consts[-x - 1])
                 for x in args)


def _make_call(ins, consts, i, counters, vm, track_bounds):
    npc = i + 1
    dest = ins.dest
    args = ins.args
    plan = _arg_plan(args, consts)
    name = ins.name
    telem = vm.telemetry
    program = vm.program

    if name is not None:
        callee = program.functions.get(name)
        if callee is None:
            # Natives are looked up per call (mirroring the reference
            # ladder), so a handler table swapped in after predecode —
            # or a genuinely unknown name — behaves identically.
            natives = vm.natives
            def h(frame, regs, thread):
                counters.instructions += 1
                counters.calls += 1
                values = [regs[x] if isreg else x
                          for isreg, x in plan]
                native = natives.get(name)
                if native is None:
                    raise VMError(f"unknown function {name!r}")
                if track_bounds and frame.bounds is not None:
                    vm.native_arg_bounds = [
                        frame.bounds.get(x) if x >= 0 else None
                        for x in args]
                if telem is None:
                    result = native(vm, thread, values)
                else:
                    t0 = counters.instructions
                    result = native(vm, thread, values)
                    telem.native_call(name, thread.tid, t0,
                                      counters.instructions)
                if result is BLOCK_RETRY:
                    frame.pc = i   # re-execute the call on wake
                    return -1
                if vm._ckpt_pending is not None:
                    # net_recv asked for a request checkpoint; snapshot
                    # at the CALL itself (see the reference loop).
                    ck_conn, ck_raw = vm._ckpt_pending
                    vm._ckpt_pending = None
                    frame.pc = i
                    thread.checkpoint = RequestCheckpoint(
                        thread, ck_conn, ck_raw)
                if type(result) is NativeResult:
                    if dest is not None:
                        regs[dest] = result.value
                        if frame.bounds is not None and result.bounds:
                            frame.bounds[dest] = result.bounds
                elif dest is not None:
                    regs[dest] = result if result is not None else 0
                if thread.state != RUNNABLE \
                        or thread.frames[-1] is not frame:
                    frame.pc = npc
                    return -1
                return npc
            return h

        def h(frame, regs, thread):
            counters.instructions += 1
            counters.calls += 1
            values = [regs[x] if isreg else x for isreg, x in plan]
            arg_bounds = None
            if track_bounds and frame.bounds is not None:
                arg_bounds = {}
                fb = frame.bounds
                for j, x in enumerate(args):
                    if x >= 0 and x in fb:
                        arg_bounds[j] = fb[x]
            frame.pc = npc
            vm._push_frame(thread, callee, values, dest, arg_bounds)
            return -1
        return h

    # Indirect call through a register/constant function pointer.
    a = ins.a
    def h(frame, regs, thread):
        counters.instructions += 1
        counters.calls += 1
        values = [regs[x] if isreg else x for isreg, x in plan]
        target = (regs[a] if a >= 0 else consts[-a - 1]) & ADDRESS_MASK
        callee = program.function_at(target)
        if callee is None:
            raise SegmentationFault(target, 1, "indirect call to non-code")
        arg_bounds = None
        if track_bounds and frame.bounds is not None:
            arg_bounds = {}
            fb = frame.bounds
            for j, x in enumerate(args):
                if x >= 0 and x in fb:
                    arg_bounds[j] = fb[x]
        frame.pc = npc
        vm._push_frame(thread, callee, values, dest, arg_bounds)
        return -1
    return h


def _make_ret(ins, consts, counters, vm, track_bounds, mem):
    a = ins.a
    telem = vm.telemetry
    read_u64 = mem.reader(8)
    aval = None if a is None or a >= 0 else consts[-a - 1]
    def h(frame, regs, thread):
        counters.instructions += 1
        if a is None:
            value = 0
        elif a >= 0:
            value = regs[a]
        else:
            value = aval
        actual = read_u64(frame.ret_slot)
        if actual != frame.token:
            vm._corrupted_return(actual)
        ret_bounds = None
        if track_bounds and frame.bounds is not None \
                and a is not None and a >= 0:
            ret_bounds = frame.bounds.get(a)
        thread.frames.pop()
        if telem is not None:
            telem.function_exit(frame.fn.name, thread.tid,
                                counters.instructions)
        thread.sp = frame.base + frame.fn.frame_size
        if not thread.frames:
            vm._finish_thread(thread, value)
            return -1
        parent = thread.frames[-1]
        if frame.dest is not None:
            parent.regs[frame.dest] = value
            if parent.bounds is not None and ret_bounds:
                parent.bounds[frame.dest] = ret_bounds
        return -1
    return h


# ---------------------------------------------------------------------------
# Superinstructions.
# ---------------------------------------------------------------------------

def _fuse_gep_load(gep, load, consts, i, counters, mem, track_bounds,
                   stats):
    npc = i + 2
    ga, gb, gc, gsize, clamp = gep.a, gep.b, gep.c, gep.size, gep.clamp
    gdest = gep.dest
    ldest, lsize = load.dest, load.size
    # GEP's loop-top 1 (+1 clamped merge) plus LOAD's loop-top 1, all
    # charged before the traced read — identical totals at the only
    # observable point of the pair.
    inc = 3 if clamp else 2
    is_float = load.is_float
    signed = load.signed and lsize < 8
    sign = 1 << (lsize * 8 - 1)
    wrap = sign << 1
    read_f64 = mem.reader_f64() if is_float else None
    read_uint = mem.reader(lsize) if not is_float else None
    def h(frame, regs, thread):
        counters.instructions += inc
        base = regs[ga] if ga >= 0 else consts[-ga - 1]
        if gb is None:
            value = base + gc
        else:
            value = base + (regs[gb] if gb >= 0 else consts[-gb - 1]) \
                * gsize + gc
        if clamp:
            value = (base & HI32) | (value & M32)
        else:
            value &= M64
        regs[gdest] = value
        if track_bounds:
            bnd = frame.bounds
            if bnd is not None and ga >= 0 and ga in bnd:
                bnd[gdest] = bnd[ga]
        if is_float:
            regs[ldest] = read_f64(value & M32)
        else:
            loaded = read_uint(value & M32)
            if signed and loaded & sign:
                loaded = (loaded - wrap) & M64
            regs[ldest] = loaded
        if stats is not None:
            stats["gep_load"] += 1
        return npc
    return h


def _fuse_gep_store(gep, store, consts, i, counters, mem, track_bounds,
                    stats):
    npc = i + 2
    ga, gb, gc, gsize, clamp = gep.a, gep.b, gep.c, gep.size, gep.clamp
    gdest = gep.dest
    sb, ssize = store.b, store.size
    inc = 3 if clamp else 2
    is_float = store.is_float
    write_f64 = mem.writer_f64() if is_float else None
    write_uint = mem.writer(ssize) if not is_float else None
    def h(frame, regs, thread):
        counters.instructions += inc
        base = regs[ga] if ga >= 0 else consts[-ga - 1]
        if gb is None:
            value = base + gc
        else:
            value = base + (regs[gb] if gb >= 0 else consts[-gb - 1]) \
                * gsize + gc
        if clamp:
            value = (base & HI32) | (value & M32)
        else:
            value &= M64
        regs[gdest] = value
        if track_bounds:
            bnd = frame.bounds
            if bnd is not None and ga >= 0 and ga in bnd:
                bnd[gdest] = bnd[ga]
        stored = regs[sb] if sb >= 0 else consts[-sb - 1]
        if is_float:
            write_f64(value & M32, stored)
        else:
            write_uint(value & M32, stored)
        if stats is not None:
            stats["gep_store"] += 1
        return npc
    return h


def _chain2(h1, h2, stats):
    """Batch two adjacent handlers into one dispatch.  Valid whenever h1
    is straight-line (fixed fall-through, never yields): every sub-handler
    still charges its own counters before its own observable effects, so
    an exception from h2 leaves exactly the reference state."""
    if stats is None:
        def h(frame, regs, thread):
            h1(frame, regs, thread)
            return h2(frame, regs, thread)
        return h
    def h(frame, regs, thread):
        h1(frame, regs, thread)
        stats["chain"] += 1
        return h2(frame, regs, thread)
    return h


def _chain3(h1, h2, h3, stats):
    if stats is None:
        def h(frame, regs, thread):
            h1(frame, regs, thread)
            h2(frame, regs, thread)
            return h3(frame, regs, thread)
        return h
    def h(frame, regs, thread):
        h1(frame, regs, thread)
        h2(frame, regs, thread)
        stats["chain"] += 1
        return h3(frame, regs, thread)
    return h


def _fuse_cmp_br(cmp_ins, br, consts, counters, stats):
    fn2 = _BIN[cmp_ins.op]
    a, b, dest = cmp_ins.a, cmp_ins.b, cmp_ins.dest
    t1, t2 = br.t1, br.t2
    def h(frame, regs, thread):
        counters.instructions += 2
        counters.branches += 1
        av = regs[a] if a >= 0 else consts[-a - 1]
        bv = regs[b] if b >= 0 else consts[-b - 1]
        cond = fn2(av, bv)
        regs[dest] = cond
        if stats is not None:
            stats["cmp_br"] += 1
        return t1 if cond else t2
    return h


def _fuse_bnd_access(cl, cu, access, consts, i, counters, mem, vm,
                     stats):
    """MPX's BNDCL + BNDCU + load/store triple (the paper's per-access
    check sequence), with counter updates interleaved step by step so a
    violation raised from either check carries the reference timestamp."""
    npc = i + 3
    pa, breg = cl.a, cl.dest
    inc_cl = 2 + (cl.c or 0)
    inc_cu = 2 + (cu.c or 0)
    cu_size = cu.size
    scheme = vm.scheme
    is_store = access.op == ops.STORE
    asize = access.size
    is_float = access.is_float
    signed = access.signed and asize < 8
    sign = 1 << (asize * 8 - 1)
    wrap = sign << 1
    sb = access.b
    adest = access.dest
    read_f64 = mem.reader_f64() if is_float else None
    write_f64 = mem.writer_f64() if is_float else None
    read_uint = mem.reader(asize) if not is_float else None
    write_uint = mem.writer(asize) if not is_float else None
    def h(frame, regs, thread):
        counters.instructions += inc_cl
        counters.bounds_checks += 1
        fb = frame.bounds
        bnd = fb.get(breg) if fb is not None else None
        if bnd is not None:
            val = (regs[pa] if pa >= 0 else consts[-pa - 1]) & M32
            if val < bnd[0]:
                scheme.handle_violation(vm, BoundsViolation(
                    "mpx", val, bnd[0], bnd[1], access="read",
                    what="bndcl"))
        counters.instructions += inc_cu
        counters.bounds_checks += 1
        if bnd is not None:
            val = (regs[pa] if pa >= 0 else consts[-pa - 1]) & M32
            if val + cu_size > bnd[1]:
                scheme.handle_violation(vm, BoundsViolation(
                    "mpx", val, bnd[0], bnd[1], size=cu_size,
                    access="read", what="bndcu"))
        counters.instructions += 1
        addr = (regs[pa] if pa >= 0 else consts[-pa - 1]) & M32
        if is_store:
            stored = regs[sb] if sb >= 0 else consts[-sb - 1]
            if is_float:
                write_f64(addr, stored)
            else:
                write_uint(addr, stored)
        elif is_float:
            regs[adest] = read_f64(addr)
        else:
            loaded = read_uint(addr)
            if signed and loaded & sign:
                loaded = (loaded - wrap) & M64
            regs[adest] = loaded
        if stats is not None:
            stats["bnd_access"] += 1
        return npc
    return h


# ---------------------------------------------------------------------------
# The predecoder.
# ---------------------------------------------------------------------------

def _make_plain(ins, consts, i, counters, vm, track_bounds, mem):
    """Standalone handler for one instruction (mirrors the reference
    if/elif ladder exactly)."""
    npc = i + 1
    op = ins.op
    if op in _BIN:
        return _make_binop(ins, consts, npc, counters)
    if op == ops.LOAD:
        return _make_load(ins, consts, npc, counters, mem)
    if op == ops.STORE:
        return _make_store(ins, consts, npc, counters, mem)
    if op == ops.GEP:
        return _make_gep(ins, consts, npc, counters, track_bounds)
    if op == ops.BR:
        return _make_br(ins, consts, counters)
    if op == ops.JMP:
        return _make_jmp(ins, counters)
    if op == ops.MOV:
        return _make_mov(ins, consts, npc, counters, track_bounds)
    if op == ops.SELECT:
        return _make_select(ins, consts, npc, counters)
    if op == ops.CALL:
        return _make_call(ins, consts, i, counters, vm, track_bounds)
    if op == ops.RET:
        return _make_ret(ins, consts, counters, vm, track_bounds, mem)
    if op == ops.ALLOCA:
        return _make_alloca(ins, npc, counters)
    if op in (ops.TRUNC, ops.SEXT, ops.SITOFP, ops.FPTOSI, ops.FNEG):
        return _make_unary(ins, consts, npc, counters)
    if op == ops.ATOMICRMW:
        return _make_atomicrmw(ins, consts, npc, counters, mem)
    if op == ops.CMPXCHG:
        return _make_cmpxchg(ins, consts, npc, counters, mem)
    if op == ops.BNDMK:
        return _make_bndmk(ins, consts, npc, counters)
    if op == ops.BNDCL:
        return _make_bndcl(ins, consts, npc, counters, vm)
    if op == ops.BNDCU:
        return _make_bndcu(ins, consts, npc, counters, vm)
    if op == ops.BNDLDX:
        return _make_bndldx(ins, consts, npc, counters, vm)
    if op == ops.BNDSTX:
        return _make_bndstx(ins, consts, npc, counters, vm)
    if op == ops.TRAP:
        return _make_trap(ins, counters)
    if op == ops.NOP:
        return _make_nop(npc, counters)
    return _make_raise(
        f"unhandled opcode {op} ({ops.OP_NAMES.get(op)})", counters)


#: Ops whose handlers are straight-line: fixed fall-through, never yield
#: to the dispatch loop.  (They may still raise — traps, faults and
#: violations propagate from inside a chain with reference-exact state.)
_STRAIGHT_OPS = frozenset(_BIN) | frozenset((
    ops.LOAD, ops.STORE, ops.GEP, ops.MOV, ops.SELECT, ops.ALLOCA,
    ops.TRUNC, ops.SEXT, ops.SITOFP, ops.FPTOSI, ops.FNEG,
    ops.ATOMICRMW, ops.CMPXCHG, ops.BNDMK, ops.BNDCL, ops.BNDCU,
    ops.BNDLDX, ops.BNDSTX, ops.NOP))

#: Ops that may end (but not start or continue) a chain: they transfer
#: control, so the chain simply returns their computed target.
_TERM_OPS = frozenset((ops.BR, ops.JMP))

_STRAIGHT_FUSED = frozenset(("gep_load", "gep_store", "bnd_access"))


def compile_function(vm, fn, consts) -> FastCode:
    """Predecode ``fn`` against ``vm``'s bound runtime (space, counters,
    scheme, telemetry) and ``consts`` (the loader-resolved pool)."""
    counters = vm.counters
    mem = _MemCache(vm.space)
    track_bounds = vm.scheme.uses_register_bounds
    code = fn.code
    n = len(code)
    plain: List[Handler] = [
        _make_plain(code[i], consts, i, counters, vm, track_bounds, mem)
        for i in range(n)]
    handlers = list(plain)
    costs = [1] * n
    sites: Dict[str, int] = {}

    # Superinstruction fusion.  A fused region must be straight-line
    # (no instruction after the head may be a jump target) and is only
    # applied when the scheme's declared fusion classes allow it.
    fusion = getattr(vm.scheme, "fastpath_fusion", ())
    starts = getattr(fn, "block_starts", None)
    if starts is None:
        starts = frozenset(fn.block_index.values())
    # Fusion hits are only tallied when telemetry observes the run: the
    # default path keeps the zero-cost-when-off contract.
    stats = None
    if vm.telemetry is not None and fusion:
        stats = vm.fastpath_stats
        for kind in ("gep_load", "gep_store", "cmp_br", "bnd_access",
                     "chain"):
            stats.setdefault(kind, 0)
    fkind: Dict[int, str] = {}
    i = 0
    while i < n - 1:
        ins = code[i]
        nxt = code[i + 1]
        fused = None
        kind = None
        length = 2
        if i + 1 not in starts:
            if ins.op == ops.GEP and ins.dest is not None:
                if nxt.op == ops.LOAD and nxt.a == ins.dest \
                        and "gep_load" in fusion:
                    fused = _fuse_gep_load(ins, nxt, consts, i, counters,
                                           mem, track_bounds, stats)
                    kind = "gep_load"
                elif nxt.op == ops.STORE and nxt.a == ins.dest \
                        and "gep_store" in fusion:
                    fused = _fuse_gep_store(ins, nxt, consts, i, counters,
                                            mem, track_bounds, stats)
                    kind = "gep_store"
            elif ins.op in CMP_OPS and nxt.op == ops.BR \
                    and nxt.a == ins.dest and ins.dest is not None \
                    and "cmp_br" in fusion:
                fused = _fuse_cmp_br(ins, nxt, consts, counters, stats)
                kind = "cmp_br"
            elif ins.op == ops.BNDCL and nxt.op == ops.BNDCU \
                    and "bnd_access" in fusion and track_bounds \
                    and i + 2 < n and i + 2 not in starts \
                    and nxt.dest == ins.dest and nxt.a == ins.a:
                access = code[i + 2]
                if access.op in (ops.LOAD, ops.STORE) \
                        and access.a == ins.a:
                    fused = _fuse_bnd_access(ins, nxt, access, consts, i,
                                             counters, mem, vm, stats)
                    kind = "bnd_access"
                    length = 3
        if fused is not None:
            handlers[i] = fused
            costs[i] = length
            fkind[i] = kind
            sites[kind] = sites.get(kind, 0) + 1
            i += length
        else:
            i += 1

    # Second pass: batch the remaining adjacent straight-line handlers
    # (including the specialized superinstructions above) into chains of
    # up to FUSE_MAX quantum units, ending early on a control transfer.
    # Pure dispatch elision — each sub-handler runs unchanged, so the
    # identity contract is untouched; only loop bookkeeping is saved.
    def _straight(idx):
        k = fkind.get(idx)
        if k is not None:
            return k in _STRAIGHT_FUSED
        return code[idx].op in _STRAIGHT_OPS

    def _chainable_tail(idx):
        k = fkind.get(idx)
        if k is not None:
            return k in _STRAIGHT_FUSED or k == "cmp_br"
        return code[idx].op in _STRAIGHT_OPS or code[idx].op in _TERM_OPS

    i = 0
    while i < n:
        total = costs[i]
        if total >= FUSE_MAX or not _straight(i):
            i += total
            continue
        j = i + total
        if j >= n or j in starts or costs[j] + total > FUSE_MAX \
                or not _chainable_tail(j):
            i += total
            continue
        members = [handlers[i], handlers[j]]
        total += costs[j]
        if _straight(j) and total < FUSE_MAX:
            k = j + costs[j]
            if k < n and k not in starts \
                    and costs[k] + total <= FUSE_MAX \
                    and _chainable_tail(k):
                members.append(handlers[k])
                total += costs[k]
        if len(members) == 2:
            handlers[i] = _chain2(members[0], members[1], stats)
        else:
            handlers[i] = _chain3(members[0], members[1], members[2],
                                  stats)
        costs[i] = total
        sites["chain"] = sites.get("chain", 0) + 1
        i += total
    return FastCode(handlers, costs, plain, code, sites)
