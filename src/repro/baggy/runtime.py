"""Baggy Bounds runtime: buddy-allocated heap + size table.

Mechanics (after Akritidis et al., USENIX Security'09, as summarized in
the paper's §2.2):

* ``malloc`` rounds every object up to a power-of-two *allocation bound*
  via the buddy allocator, so base and limit are derivable from the
  pointer and the block's log2 size alone;
* a **size table** with one byte per 16-byte slot holds that log2 size
  (0 = unprotected memory, e.g. stack/globals — like the Low Fat Pointers
  prototype, this variant protects the heap);
* the check is ``base = p & ~(2^k - 1); p + size <= base + 2^k`` — no
  per-pointer metadata, but *allocation-bounds* protection only:
  overflows into the power-of-two padding are not detected (the paper's
  reported trade-off: 70% perf / 12% memory on SPECINT 2000).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import BoundsViolation
from repro.memory.address_space import PERM_RW
from repro.memory.allocator import BuddyAllocator
from repro.memory.layout import ADDRESS_MASK
from repro.vm import policy as violation_policy
from repro.vm.scheme import SchemeRuntime

if TYPE_CHECKING:   # pragma: no cover - typing only
    from repro.ir.module import Module
    from repro.vm.machine import VM

#: One size-table byte describes this many bytes of memory.
SLOT_SHIFT = 4
SLOT_SIZE = 1 << SLOT_SHIFT

#: The table covers the whole 4 GiB space: 256 MiB reserved (lazily
#: materialized), mirroring ASan's shadow placement trick.
TABLE_BASE = 0x3000_0000


def table_address(address: int) -> int:
    return TABLE_BASE + ((address & ADDRESS_MASK) >> SLOT_SHIFT)


class BaggyScheme(SchemeRuntime):
    """Baggy-Bounds-style protection (heap objects)."""

    name = "baggy"
    # Baggy's slot-rounded checks are plain IR; the generic fusion
    # classes apply unchanged and observe identical PerfCounters.
    fastpath_fusion = ("cmp_br", "gep_load", "gep_store")

    def __init__(self, arena_bytes: int = 8 * 1024 * 1024,
                 optimize_safe: bool = True,
                 policy: str = violation_policy.ABORT):
        super().__init__(policy=policy)
        self.arena_bytes = arena_bytes
        self.optimize_safe = optimize_safe
        self.buddy: Optional[BuddyAllocator] = None
        self._sizes: Dict[int, int] = {}    # base -> requested size
        self.padding_bytes = 0

    # -- compile-time ----------------------------------------------------
    def instrument(self, module: "Module") -> "Module":
        from repro.passes.instrument_baggy import run_baggy_instrumentation
        from repro.passes.safe_access import run_safe_access
        module = module.clone()
        if self.optimize_safe:
            run_safe_access(module)
        return run_baggy_instrumentation(module)

    # -- lifecycle ----------------------------------------------------------
    def attach(self, vm: "VM") -> None:
        super().attach(vm)
        table_span = (1 << 32) >> SLOT_SHIFT
        vm.enclave.space.map(TABLE_BASE, table_span, PERM_RW, "baggy-table")
        # The arena must sit below bit 31 so OOB-marked pointers (bit 31
        # set) point at unmapped space and fault on dereference.
        self.buddy = BuddyAllocator(vm.enclave.space, self.arena_bytes,
                                    top=0x6000_0000)

    # -- size-table maintenance ------------------------------------------------
    def _mark(self, vm: "VM", base: int, order: int) -> None:
        slots = (1 << order) >> SLOT_SHIFT
        vm.bulk_write(table_address(base), bytes((order,)) * max(slots, 1))

    def _clear(self, vm: "VM", base: int, order: int) -> None:
        slots = (1 << order) >> SLOT_SHIFT
        vm.bulk_write(table_address(base), b"\x00" * max(slots, 1))

    # -- allocation ---------------------------------------------------------------
    def malloc(self, vm: "VM", size: int) -> int:
        size = max(int(size), 1)
        base = self.buddy.alloc(size)
        order = self.buddy._live[base]
        self._mark(vm, base, order)
        self._sizes[base] = size
        self.padding_bytes += (1 << order) - size
        vm.charge(10 + ((1 << order) >> SLOT_SHIFT) // 8)
        if vm.telemetry is not None:
            registry = vm.telemetry.registry
            registry.gauge("baggy.padding_bytes").set(self.padding_bytes)
            registry.histogram("baggy.alloc_order").observe(1 << order)
        return base

    def calloc(self, vm: "VM", count: int, size: int) -> int:
        total = max(int(count * size), 1)
        base = self.malloc(vm, total)
        tracer, vm.space.tracer = vm.space.tracer, None
        try:
            vm.space.fill(base, 0, total)
        finally:
            vm.space.tracer = tracer
        vm.touch_range(base, total, True)
        return base

    def realloc(self, vm: "VM", ptr: int, size: int) -> int:
        base = ptr & ADDRESS_MASK
        if base == 0:
            return self.malloc(vm, size)
        old_size = self._sizes.get(base, 0)
        new = self.malloc(vm, size)
        data = vm.bulk_read(base, min(old_size, size))
        vm.bulk_write(new, data)
        self.free(vm, base)
        return new

    def free(self, vm: "VM", ptr: int) -> None:
        base = ptr & ADDRESS_MASK
        if base == 0:
            return
        order = self.buddy._live.get(base)
        self._sizes.pop(base, None)
        self.buddy.free(base)
        if order is not None:
            self._clear(vm, base, order)

    # -- libc wrappers -----------------------------------------------------------------
    def libc_range(self, vm: "VM", ptr: int, size: int, is_write: bool,
                   arg_bounds=None) -> Tuple[int, int]:
        address = ptr & ADDRESS_MASK
        order = vm.space.read_u8(table_address(address))
        vm.charge(4)
        if order:
            block = 1 << order
            base = address & ~(block - 1)
            if address + size > base + block:
                self.handle_violation(vm, BoundsViolation(
                    self.name, address, base, base + block, size,
                    access="write" if is_write else "read",
                    what="libc wrapper"))
                if self.policy != violation_policy.LOG_AND_CONTINUE:
                    return (address, max(0, base + block - address))
        return (address, size)

    # -- pass-inserted slow path ----------------------------------------------------------
    #: Bit 31 marks an out-of-bounds pointer (points outside the heap, so
    #: dereferencing it faults — Baggy's hardware-trap detection).
    OOB_MARK = 0x8000_0000

    def _arith(self, vm: "VM", thread, args) -> int:
        """Pointer arithmetic left its block: tolerate near misses (up to
        half a slot, like the original) by OOB-marking, else raise."""
        source = args[0] & ADDRESS_MASK
        dest = args[1] & ADDRESS_MASK
        vm.charge(8)
        order = vm.space.read_u8(table_address(source))
        if order == 0:
            return dest          # unprotected source: pass through
        block = 1 << order
        base = source & ~(block - 1)
        limit = base + block
        if base <= dest < limit:
            return dest          # spurious slow-path entry
        if limit <= dest <= limit + SLOT_SIZE // 2 \
                or base - SLOT_SIZE // 2 <= dest < base:
            return dest | self.OOB_MARK     # legal one-past-end-ish pointer
        self.handle_violation(vm, BoundsViolation(
            self.name, dest, base, limit,
            what="allocation bounds (pointer arithmetic)"))
        return dest          # tolerated: raw out-of-block pointer

    def natives(self) -> Dict[str, object]:
        return {"__baggy_arith": self._arith}

    # -- reporting ---------------------------------------------------------------------------
    def memory_overhead_report(self, vm: "VM") -> Dict[str, int]:
        return {
            "padding_bytes": self.padding_bytes,
            "arena_bytes": self.arena_bytes,
            "violations": self.violations,
        }
