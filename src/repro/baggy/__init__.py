"""Baggy Bounds extension scheme (paper §2.2 related work, implemented).

The paper identifies Baggy Bounds as the closest tagged/table-based
relative of SGXBounds but notes neither it nor Low Fat Pointers is
publicly available; this package implements a Baggy-style scheme so the
comparison can actually be run: a buddy allocator pads every heap object
to a power of two, a byte-per-16-bytes size table stores log2(block size),
and checks derive base and bound from the pointer alone.
"""

from repro.baggy.runtime import BaggyScheme

__all__ = ["BaggyScheme"]
