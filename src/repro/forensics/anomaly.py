"""Streaming anomaly detectors over campaign metrics.

Four production-shaped rules, each deterministic and edge-triggered
(one alert per episode, re-armed by hysteresis, never by wall time):

* :class:`EPCThrashDetector` — the fleet-wide EPC fault rate over a
  rolling tick window exceeds a threshold: some worker (or a noisy
  neighbour) is refaulting its working set every tick, the paper's
  2x-2000x paging cliff (§2.1) showing up as a sustained rate instead
  of a one-off spike.
* :class:`LatencyRegressionDetector` — the served-latency p95 regresses
  by more than ``factor`` against a rolling baseline (the minimum p95
  over the window); catches queueing collapse behind restarts before
  availability visibly drops.
* :class:`CrashLoopPrecursorDetector` — a worker crashed twice inside
  the supervisor's crash-loop window: one more and the supervisor marks
  it dead, so the precursor fires while there is still time to shed
  load away from it.
* :class:`QueueDepthDetector` — the mean in-system request depth over a
  rolling window exceeds a threshold: arrivals are outpacing the fleet's
  service rate and every further admission is a future deadline miss.
  Only fed by overload-enabled campaigns (:mod:`repro.overload`), where
  it doubles as the brownout pressure signal.

Detectors never charge simulated counters; alerts are appended to the
monitor's list and recorded into the flight recorder as ``kind="alert"``
records, which is how they surface in ``SLOTracker.summary()`` and
campaign reports.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.forensics.flightlog import FlightRecorder


class EPCThrashDetector:
    """Rolling-window EPC fault-rate rule (faults per tick)."""

    name = "epc_thrash"

    def __init__(self, window: int = 16, faults_per_tick: int = 200):
        self.window = max(1, window)
        self.faults_per_tick = faults_per_tick
        self._deltas: Deque[int] = deque(maxlen=self.window)
        self._prev_total: Optional[int] = None
        self.alerting = False

    def observe(self, now: int, epc_faults_total: int) -> Optional[Dict]:
        if self._prev_total is None:
            self._prev_total = epc_faults_total
            return None
        delta = max(0, epc_faults_total - self._prev_total)
        self._prev_total = epc_faults_total
        self._deltas.append(delta)
        if len(self._deltas) < self.window:
            return None
        rate = sum(self._deltas) // self.window
        if not self.alerting and rate >= self.faults_per_tick:
            self.alerting = True
            return {"rate_per_tick": rate,
                    "threshold": self.faults_per_tick,
                    "window_ticks": self.window}
        if self.alerting and rate < self.faults_per_tick // 2:
            self.alerting = False   # hysteresis: re-arm at half threshold
        return None


class LatencyRegressionDetector:
    """p95 latency versus a rolling-minimum baseline."""

    name = "latency_regression"

    def __init__(self, window: int = 24, factor: float = 4.0,
                 min_served: int = 16):
        self.window = max(2, window)
        self.factor = factor
        self.min_served = min_served
        self._samples: Deque[int] = deque(maxlen=self.window)
        self.alerting = False

    def observe(self, now: int, p95: Optional[int],
                served: int) -> Optional[Dict]:
        if p95 is None or served < self.min_served:
            return None
        self._samples.append(p95)
        if len(self._samples) < self.window:
            return None
        baseline = min(self._samples)
        if baseline <= 0:
            return None
        ratio = p95 / baseline
        if not self.alerting and ratio >= self.factor:
            self.alerting = True
            return {"p95_cycles": p95, "baseline_cycles": baseline,
                    "ratio_x100": int(ratio * 100),
                    "factor_x100": int(self.factor * 100)}
        if self.alerting and ratio < self.factor / 2:
            self.alerting = False
        return None


class QueueDepthDetector:
    """Rolling-window mean of in-system request depth.

    Queueing pressure is the other face of the EPC cliff: once a scheme's
    service time exceeds the inter-arrival time, depth grows without
    bound and every request admitted is a request that will miss its
    deadline.  The rule alerts when the mean depth over the window
    crosses the threshold, with the same half-threshold hysteresis as
    the other detectors; ``severe`` marks a window at twice the
    threshold (used by brownout to escalate the shed level)."""

    name = "queue_depth"

    def __init__(self, window: int = 8, depth_threshold: int = 24):
        self.window = max(1, window)
        self.depth_threshold = depth_threshold
        self._depths: Deque[int] = deque(maxlen=self.window)
        self.alerting = False
        self.severe = False

    def observe(self, now: int, depth: int) -> Optional[Dict]:
        self._depths.append(max(0, depth))
        if len(self._depths) < self.window:
            return None
        mean = sum(self._depths) // self.window
        self.severe = mean >= 2 * self.depth_threshold
        if not self.alerting and mean >= self.depth_threshold:
            self.alerting = True
            return {"mean_depth": mean,
                    "threshold": self.depth_threshold,
                    "window_ticks": self.window}
        if self.alerting and mean < self.depth_threshold // 2:
            self.alerting = False
        return None


class CrashLoopPrecursorDetector:
    """K-1 crashes of one worker inside the crash-loop window."""

    name = "crash_loop_precursor"

    def __init__(self, window: int = 60, precursor_k: int = 2):
        self.window = window
        self.precursor_k = max(1, precursor_k)
        self._crashes: Dict[int, List[int]] = {}
        self._alerted_at: Dict[int, int] = {}

    def on_crash(self, now: int, wid: int) -> Optional[Dict]:
        ticks = self._crashes.setdefault(wid, [])
        ticks.append(now)
        recent = [t for t in ticks if now - t <= self.window]
        self._crashes[wid] = recent
        if len(recent) < self.precursor_k:
            return None
        # One alert per episode: re-arm once the window has fully slid
        # past the tick that triggered the previous alert.
        last = self._alerted_at.get(wid)
        if last is not None and now - last <= self.window:
            return None
        self._alerted_at[wid] = now
        return {"crashes_in_window": len(recent),
                "window_ticks": self.window,
                "first_crash_tick": recent[0]}


class AnomalyMonitor:
    """Runs every detector; turns hits into alert records."""

    def __init__(self, recorder: Optional[FlightRecorder] = None,
                 epc_faults_per_tick: int = 200,
                 latency_factor: float = 4.0,
                 crash_loop_window: int = 60):
        self.recorder = recorder
        self.epc = EPCThrashDetector(faults_per_tick=epc_faults_per_tick)
        self.latency = LatencyRegressionDetector(factor=latency_factor)
        self.crash_loop = CrashLoopPrecursorDetector(
            window=crash_loop_window)
        self.queue = QueueDepthDetector()
        self.alerts: List[Dict[str, object]] = []

    # -- feeds ----------------------------------------------------------
    def observe_tick(self, now: int, epc_faults_total: int,
                     p95: Optional[int], served: int,
                     queue_depth: Optional[int] = None) -> None:
        """Per-tick metrics sample (campaign loop, after outcomes).

        ``queue_depth`` is only fed by overload-enabled campaigns; the
        detector stays silent (and cost-free) when it is never given a
        sample."""
        hit = self.epc.observe(now, epc_faults_total)
        if hit is not None:
            self._alert(self.epc.name, now, None, hit)
        hit = self.latency.observe(now, p95, served)
        if hit is not None:
            self._alert(self.latency.name, now, None, hit)
        if queue_depth is not None:
            hit = self.queue.observe(now, queue_depth)
            if hit is not None:
                self._alert(self.queue.name, now, None, hit)

    def on_crash(self, now: int, wid: int) -> None:
        """A worker crashed (supervisor feed)."""
        hit = self.crash_loop.on_crash(now, wid)
        if hit is not None:
            self._alert(self.crash_loop.name, now, wid, hit)

    # -- sink -----------------------------------------------------------
    def _alert(self, detector: str, now: int, wid: Optional[int],
               detail: Dict[str, object]) -> None:
        alert = {"detector": detector, "tick": now, "wid": wid,
                 "detail": detail}
        self.alerts.append(alert)
        if self.recorder is not None:
            self.recorder.record("alert", ts=now, cat="anomaly", wid=wid,
                                 detector=detector, **detail)

    def summary(self) -> Dict[str, object]:
        by_detector: Dict[str, int] = {}
        for alert in self.alerts:
            name = alert["detector"]
            by_detector[name] = by_detector.get(name, 0) + 1
        return {"total": len(self.alerts),
                "by_detector": {k: by_detector[k]
                                for k in sorted(by_detector)}}
