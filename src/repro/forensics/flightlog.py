"""The flight recorder: a bounded, deterministic ring buffer of events.

Every record is typed (``kind``) and categorized (``cat``), carries the
simulated timestamp it was produced at (``ts`` — retired instructions for
VM-side events, campaign ticks for fleet-side events, as noted per kind),
and optionally the originating request id (``rid``) and worker id
(``wid``) so one request can be followed from Balancer dispatch through
NetworkSim into the worker VM and back out as a reply, a retry, or a
postmortem.

The buffer is a ring: past ``capacity`` the oldest records are evicted
and counted in :attr:`FlightRecorder.dropped` — a campaign can emit
millions of events without unbounded memory, and the last-N window a
postmortem snapshots is always intact.  Nothing here reads wall clocks
or charges simulated counters, so attaching a recorder never changes a
benchmark number and two identical seeded runs produce byte-identical
logs.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

#: Default ring capacity (records, not bytes).
DEFAULT_CAPACITY = 4096


class EventRecord:
    """One typed entry in the flight recorder."""

    __slots__ = ("seq", "ts", "kind", "cat", "rid", "wid", "detail")

    def __init__(self, seq: int, ts: int, kind: str, cat: str,
                 rid: Optional[int], wid: Optional[int],
                 detail: Dict[str, object]):
        self.seq = seq          # global emission order, never reused
        self.ts = ts            # simulated clock (instructions or ticks)
        self.kind = kind        # record type ("dispatch", "epc_fault", ...)
        self.cat = cat          # subsystem ("fleet", "net", "epc", ...)
        self.rid = rid          # originating request id, if correlated
        self.wid = wid          # fleet worker id, if any
        self.detail = detail    # kind-specific fields (plain JSON values)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "cat": self.cat,
            "rid": self.rid,
            "wid": self.wid,
            "detail": self.detail,
        }

    def render(self) -> str:
        """One deterministic text line (``detail`` keys sorted)."""
        rid = "-" if self.rid is None else str(self.rid)
        wid = "-" if self.wid is None else str(self.wid)
        detail = " ".join(f"{key}={self.detail[key]}"
                          for key in sorted(self.detail))
        text = (f"#{self.seq:06d} ts={self.ts:>12} rid={rid:>6} "
                f"wid={wid:>2} [{self.cat}] {self.kind}")
        return f"{text} {detail}" if detail else text


class FlightRecorder:
    """Bounded ring of :class:`EventRecord`, filterable and renderable."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(1, capacity)
        self._ring: Deque[EventRecord] = deque(maxlen=self.capacity)
        self.total = 0          # records ever emitted (incl. evicted)
        self._seq = 0

    # -- recording ------------------------------------------------------
    def record(self, kind: str, ts: int = 0, cat: str = "",
               rid: Optional[int] = None, wid: Optional[int] = None,
               **detail: object) -> EventRecord:
        record = EventRecord(self._seq, ts, kind, cat, rid, wid, detail)
        self._seq += 1
        self.total += 1
        self._ring.append(record)
        return record

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        return self.total - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.total = 0
        self._seq = 0

    # -- querying -------------------------------------------------------
    def events(self, kind: Optional[str] = None, cat: Optional[str] = None,
               rid: Optional[int] = None, wid: Optional[int] = None,
               last: Optional[int] = None) -> List[EventRecord]:
        """Records matching every given filter, oldest first; ``last``
        keeps only the newest N of the matches."""
        out = [r for r in self._ring
               if (kind is None or r.kind == kind)
               and (cat is None or r.cat == cat)
               and (rid is None or r.rid == rid)
               and (wid is None or r.wid == wid)]
        if last is not None and last >= 0:
            out = out[len(out) - min(last, len(out)):]
        return out

    def last(self, n: int) -> List[EventRecord]:
        """The newest ``n`` records, oldest first."""
        return self.events(last=n)

    # -- rendering ------------------------------------------------------
    def to_jsonl(self, records: Optional[Iterable[EventRecord]] = None) -> str:
        """One JSON object per line; keys sorted for byte-identity."""
        records = self._ring if records is None else records
        return "\n".join(
            json.dumps(r.as_dict(), sort_keys=True, separators=(",", ":"),
                       allow_nan=False)
            for r in records)

    def render_text(self, last: Optional[int] = None) -> str:
        """Deterministic text rendering (header + one line per record)."""
        records = self._ring if last is None else self.last(last)
        lines = [f"flight recorder: {len(self._ring)} of {self.total} "
                 f"records retained (capacity {self.capacity}, "
                 f"dropped {self.dropped})"]
        lines.extend(r.render() for r in records)
        return "\n".join(lines)
