"""Postmortem capture: a self-contained crash report from simulated state.

Triggered on a ``BoundsViolation`` under a terminal policy, a watchdog
timeout, or any worker/server crash, :func:`capture_postmortem` snapshots
everything a debugger would want from inside the opaque enclave:

* the MiniC call stack with source locations (the codegen stamps AST
  line numbers into IR instructions; the nearest preceding stamped
  instruction to each frame's pc is its source line);
* the faulting pointer decoded *per scheme* — SGXBounds' tagged LBA/UB
  (including the lower-bound word re-read from memory at the UB address,
  paper §3.2), ASan's shadow-byte neighborhood around the fault, MPX's
  bounds-directory/bounds-table entry covering the address;
* the last-N flight-recorder events, correlated by request id;
* EPC residency statistics and the enclave's performance counters;
* the request payload that triggered the fault (hex preview).

Everything derives from simulated state — no wall clocks, no Python
object ids — so a report is byte-identical across same-seed runs.  All
memory inspection goes through :func:`_peek`, which reads the address
space with the cache/EPC tracer detached: capturing a postmortem never
charges a simulated counter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import BoundsViolation, ReproError, WatchdogTimeout
from repro.memory.layout import ADDRESS_MASK

#: Report format version (bump on breaking schema changes).
POSTMORTEM_SCHEMA = 1

#: Bytes of payload preserved verbatim (hex) in a report.
PAYLOAD_PREVIEW = 64

#: ASan decode: granules shown on each side of the faulting granule.
SHADOW_WINDOW = 8


# ---------------------------------------------------------------------------
# Untraced memory inspection
# ---------------------------------------------------------------------------
def _peek(vm, address: int, size: int) -> Optional[bytes]:
    """Read simulated memory without charging the cache/EPC model;
    None when the range is unmapped (forensics must never crash)."""
    space = vm.space
    tracer, space.tracer = space.tracer, None
    try:
        return space.read(address & ADDRESS_MASK, size)
    except ReproError:
        return None
    finally:
        space.tracer = tracer


def _peek_u32(vm, address: int) -> Optional[int]:
    raw = _peek(vm, address, 4)
    return None if raw is None else int.from_bytes(raw, "little")


def _peek_u64(vm, address: int) -> Optional[int]:
    raw = _peek(vm, address, 8)
    return None if raw is None else int.from_bytes(raw, "little")


# ---------------------------------------------------------------------------
# Stack capture with source locations
# ---------------------------------------------------------------------------
def capture_stack(vm, thread=None) -> List[Dict[str, object]]:
    """The MiniC call stack, outermost frame first.

    Falls back from the faulting thread to the current one to the first
    thread with live frames, so a crash caught after the VM cleared
    ``current`` still yields a stack.
    """
    if thread is None:
        thread = getattr(vm, "current", None)
    if thread is None or not getattr(thread, "frames", None):
        for candidate in getattr(vm, "threads", ()):
            if candidate.frames:
                thread = candidate
                break
    frames: List[Dict[str, object]] = []
    if thread is None:
        return frames
    for frame in thread.frames:
        code = frame.code
        pc = min(frame.pc, len(code) - 1) if code else 0
        line = 0
        # Instrumentation-inserted instructions carry line 0; the nearest
        # preceding stamped instruction names the source statement.
        for index in range(pc, -1, -1):
            stamped = code[index].line
            if stamped:
                line = stamped
                break
        frames.append({"function": frame.fn.name, "pc": frame.pc,
                       "line": line})
    return frames


def render_stack(frames: List[Dict[str, object]]) -> List[str]:
    """gdb-style text lines, innermost frame first."""
    lines = []
    for depth, frame in enumerate(reversed(frames)):
        where = f"line {frame['line']}" if frame["line"] else "line ?"
        lines.append(f"  #{depth} {frame['function']} "
                     f"({where}, pc={frame['pc']})")
    return lines or ["  <no frames>"]


# ---------------------------------------------------------------------------
# Per-scheme pointer decode
# ---------------------------------------------------------------------------
def decode_pointer(vm, scheme, err) -> Dict[str, object]:
    """Scheme-specific forensics for the faulting access."""
    address = getattr(err, "address", None)
    decoded: Dict[str, object] = {
        "scheme": getattr(scheme, "name", "unknown"),
        "address": address,
    }
    if address is None:
        return decoded
    name = getattr(scheme, "name", "")
    if name == "sgxbounds":
        _decode_sgxbounds(vm, err, decoded)
    elif name == "asan":
        _decode_asan(vm, err, decoded)
    elif name == "mpx":
        _decode_mpx(vm, scheme, err, decoded)
    elif isinstance(err, BoundsViolation):
        decoded["bounds"] = [err.lower, err.upper]
        decoded["object_bytes"] = max(0, err.upper - err.lower)
    return decoded


def _decode_sgxbounds(vm, err, decoded: Dict[str, object]) -> None:
    """Tagged-pointer decode: UB from the tag's high half, LB from the
    lower-bound word stored at the UB address (paper §3.1-3.2)."""
    lower = getattr(err, "lower", 0)
    upper = getattr(err, "upper", 0)
    address = err.address
    decoded["tag"] = {"pointer": address, "upper_bound": upper}
    decoded["lower_bound_address"] = upper
    decoded["lower_bound_word"] = _peek_u32(vm, upper) \
        if upper else None
    decoded["bounds"] = [lower, upper]
    decoded["object_bytes"] = max(0, upper - lower)
    size = getattr(err, "size", 1)
    if address < lower:
        decoded["underflow_bytes"] = lower - address
    elif address + size > upper:
        decoded["overflow_bytes"] = address + size - upper


def _decode_asan(vm, err, decoded: Dict[str, object]) -> None:
    """Shadow-memory neighborhood around the faulting granule."""
    from repro.asan.shadow import (
        FREED,
        GLOBAL_RZ,
        GRANULE,
        HEAP_LEFT_RZ,
        HEAP_RIGHT_RZ,
        STACK_RZ,
        shadow_address,
    )
    poison_names = {HEAP_LEFT_RZ: "heap-left-redzone",
                    HEAP_RIGHT_RZ: "heap-right-redzone",
                    FREED: "freed", STACK_RZ: "stack-redzone",
                    GLOBAL_RZ: "global-redzone"}
    address = err.address
    granule = address & ~(GRANULE - 1)
    window = []
    for offset in range(-SHADOW_WINDOW, SHADOW_WINDOW + 1):
        app = granule + offset * GRANULE
        if app < 0:
            continue
        value = _peek(vm, shadow_address(app), 1)
        value = value[0] if value is not None else None
        if value is None:
            meaning = "unmapped"
        elif value == 0:
            meaning = "addressable"
        elif value < GRANULE:
            meaning = f"partial:{value}"
        else:
            meaning = poison_names.get(value, f"poison:0x{value:02x}")
        window.append({"granule": app, "shadow": value,
                       "meaning": meaning,
                       "faulting": offset == 0})
    decoded["granule_bytes"] = GRANULE
    decoded["shadow_window"] = window
    decoded["bounds"] = [getattr(err, "lower", 0),
                         getattr(err, "upper", 0)]


def _decode_mpx(vm, scheme, err, decoded: Dict[str, object]) -> None:
    """Register bounds from the check plus the BD/BT entry covering the
    faulting address (bndldx's view of that slot)."""
    decoded["register_bounds"] = [getattr(err, "lower", 0),
                                  getattr(err, "upper", 0)]
    address = err.address & ADDRESS_MASK
    entry: Optional[Dict[str, object]] = None
    bd_base = getattr(scheme, "bd_base", 0)
    cover_shift = getattr(scheme, "bt_cover_shift", None)
    if bd_base and cover_shift is not None:
        region = address >> cover_shift
        bd_entry = bd_base + region * 8
        table = _peek_u64(vm, bd_entry)
        entry = {"bd_entry": bd_entry, "table": table}
        if table:
            entry_address = scheme._entry_address(table, address)
            entry["entry_address"] = entry_address
            entry["lower"] = _peek_u64(vm, entry_address)
            entry["upper"] = _peek_u64(vm, entry_address + 8)
            # (0, 0) is MPX INIT: no bounds ever spilled to this slot,
            # bndldx would answer allow-everything.
            entry["init"] = not entry["lower"] and not entry["upper"]
    decoded["bounds_table"] = entry
    decoded["bounds_tables_allocated"] = getattr(scheme, "bounds_tables", 0)


# ---------------------------------------------------------------------------
# Report assembly
# ---------------------------------------------------------------------------
def _epc_stats(vm) -> Dict[str, object]:
    enclave = vm.enclave
    stats: Dict[str, object] = {
        "faults": vm.counters.epc_faults,
    }
    epc = enclave.epc
    if epc is not None:
        stats.update({
            "capacity_pages": epc.capacity_pages,
            "resident_pages": epc.resident_pages,
            "peak_resident": epc.peak_resident,
            "pages_touched": len(epc.pages_touched),
            "evictions": epc.evictions,
        })
    return stats


def _describe_error(err) -> Dict[str, object]:
    info: Dict[str, object] = {
        "type": type(err).__name__,
        "message": str(err),
    }
    if isinstance(err, BoundsViolation):
        info["violation"] = err.context()
    if isinstance(err, WatchdogTimeout):
        info["budget"] = err.budget
        info["spent"] = err.spent
        info["request_id"] = err.request_id
    return info


def capture_postmortem(vm, err, reason: Optional[str] = None,
                       rid: Optional[int] = None,
                       payload: Optional[bytes] = None,
                       wid: Optional[int] = None,
                       recorder=None, last_n: int = 32,
                       thread=None) -> Dict[str, object]:
    """Build the self-contained report dict (see module docstring)."""
    scheme = vm.scheme
    report: Dict[str, object] = {
        "schema": POSTMORTEM_SCHEMA,
        "trigger": reason or type(err).__name__,
        "error": _describe_error(err),
        "scheme": getattr(scheme, "name", "unknown"),
        "policy": getattr(scheme, "policy", ""),
        "worker": wid,
        "instructions": vm.counters.instructions,
        "stack": capture_stack(vm, thread=thread),
        "pointer": decode_pointer(vm, scheme, err),
        "epc": _epc_stats(vm),
        "request": None,
        "events": [],
    }
    if rid is not None or payload is not None:
        request: Dict[str, object] = {"rid": rid}
        if payload is not None:
            request["bytes"] = len(payload)
            request["preview_hex"] = payload[:PAYLOAD_PREVIEW].hex()
        report["request"] = request
    if recorder is not None:
        report["events"] = [r.as_dict() for r in recorder.last(last_n)]
    return report


def render_postmortem(report: Dict[str, object]) -> str:
    """Deterministic text rendering of one report."""
    lines = [
        f"== postmortem: {report['trigger']} "
        f"[{report['scheme']}/{report['policy'] or '-'}] ==",
        f"error: {report['error']['message']}",
    ]
    if report.get("worker") is not None:
        lines.append(f"worker: {report['worker']}")
    request = report.get("request")
    if request:
        preview = request.get("preview_hex", "")
        lines.append(f"request: rid={request.get('rid')} "
                     f"bytes={request.get('bytes')} "
                     f"payload[:{PAYLOAD_PREVIEW}]={preview}")
    pointer = report.get("pointer") or {}
    address = pointer.get("address")
    if address is not None:
        bounds = pointer.get("bounds") or pointer.get("register_bounds")
        where = f"pointer: 0x{address:08x}"
        if bounds:
            where += f" bounds=[0x{bounds[0]:08x}, 0x{bounds[1]:08x})"
        if "lower_bound_word" in pointer:
            lb = pointer["lower_bound_word"]
            where += (f" LB@UB=0x{lb:08x}" if lb is not None
                      else " LB@UB=<unmapped>")
        lines.append(where)
    lines.append("stack (innermost first):")
    lines.extend(render_stack(report.get("stack") or []))
    epc = report.get("epc") or {}
    lines.append("epc: " + " ".join(f"{key}={epc[key]}"
                                    for key in sorted(epc)))
    events = report.get("events") or []
    lines.append(f"last {len(events)} flight-recorder events:")
    for event in events:
        rid = event.get("rid")
        lines.append(f"  #{event['seq']:06d} ts={event['ts']} "
                     f"rid={'-' if rid is None else rid} "
                     f"[{event['cat']}] {event['kind']}")
    return "\n".join(lines)
