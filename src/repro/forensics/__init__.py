"""``repro.forensics`` — flight recorder, postmortems, anomaly detection.

Three cooperating pieces (see DESIGN.md, "Forensics & flight recorder"):

* :class:`~repro.forensics.flightlog.FlightRecorder` — a bounded,
  deterministic ring buffer of typed event records (request lifecycle,
  scheme violations, EPC faults/evictions, fleet transitions) with
  request-id correlation threaded from Balancer dispatch through
  NetworkSim into the worker VM;
* :mod:`~repro.forensics.postmortem` — self-contained crash reports: the
  MiniC call stack with source locations, the faulting pointer decoded
  per scheme, the last-N flight-recorder events, EPC residency stats and
  the triggering request payload, byte-identical per seed;
* :mod:`~repro.forensics.anomaly` — streaming detectors (EPC thrash,
  latency-percentile regression, crash-loop precursor) emitting alert
  records into the event log.

Like telemetry, forensics is off by default and zero-cost when off: no
VM, enclave, network or fleet hot path does forensics work unless a
``Forensics`` object is attached, and attaching one never changes
simulated counters — every capture path reads memory with the cache/EPC
tracer detached and charges nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import BoundsViolation
from repro.forensics.anomaly import (
    AnomalyMonitor,
    CrashLoopPrecursorDetector,
    EPCThrashDetector,
    LatencyRegressionDetector,
    QueueDepthDetector,
)
from repro.forensics.flightlog import EventRecord, FlightRecorder
from repro.forensics.postmortem import (
    POSTMORTEM_SCHEMA,
    capture_postmortem,
    capture_stack,
    decode_pointer,
    render_postmortem,
)
from repro.vm import policy as violation_policy

#: Postmortem reports retained per Forensics handle (deterministic: the
#: *first* N triggers are kept, later ones only counted).
MAX_POSTMORTEMS = 16

#: Flight-recorder events snapshotted into each postmortem.
POSTMORTEM_LAST_N = 32


class Forensics:
    """One forensics context: flight recorder + postmortems + anomalies.

    ``enabled=False`` constructs a permanently inert handle: attaching it
    to a VM is a no-op and the VM keeps its forensics-free fast paths —
    the exact contract :class:`repro.telemetry.Telemetry` honours.
    """

    def __init__(self, enabled: bool = True, capacity: int = 4096,
                 max_postmortems: int = MAX_POSTMORTEMS,
                 last_n: int = POSTMORTEM_LAST_N,
                 epc_faults_per_tick: int = 200,
                 latency_factor: float = 4.0,
                 crash_loop_window: int = 60):
        self.enabled = enabled
        self.recorder = FlightRecorder(capacity)
        self.monitor = AnomalyMonitor(
            self.recorder, epc_faults_per_tick=epc_faults_per_tick,
            latency_factor=latency_factor,
            crash_loop_window=crash_loop_window)
        self.max_postmortems = max_postmortems
        self.last_n = last_n
        self.postmortems: List[Dict[str, object]] = []
        self.postmortems_dropped = 0

    # -- lifecycle -------------------------------------------------------
    def attach_vm(self, vm) -> None:
        """Hook this handle into a VM's enclave (EPC fault/flush records)."""
        vm.enclave.attach_forensics(self)

    # -- recording passthrough -------------------------------------------
    def record(self, kind: str, ts: int = 0, cat: str = "",
               rid: Optional[int] = None, wid: Optional[int] = None,
               **detail) -> None:
        self.recorder.record(kind, ts=ts, cat=cat, rid=rid, wid=wid,
                             **detail)

    # -- enclave hooks ---------------------------------------------------
    def epc_fault(self, page: int, ts: int, resident: int) -> None:
        self.recorder.record("epc_fault", ts=ts, cat="epc", page=page,
                             resident=resident)

    def epc_flush(self, evicted: int) -> None:
        self.recorder.record("epc_flush", cat="epc", evicted=evicted)

    # -- scheme hook -----------------------------------------------------
    def on_violation(self, vm, scheme, err: BoundsViolation,
                     tid: int) -> None:
        """Called from ``SchemeRuntime.handle_violation`` once the policy
        outcome is stamped.  Terminal policies (abort, drop-request) get
        a full postmortem — the stack is still intact here; continuing
        policies only leave an event record (chaos runs tolerate
        thousands of violations)."""
        rid = getattr(vm, "request_id", None)
        self.recorder.record(
            "violation", ts=vm.counters.instructions, cat="scheme",
            rid=rid, wid=getattr(vm, "worker_id", None), tid=tid,
            scheme=scheme.name, address=err.address, lower=err.lower,
            upper=err.upper, access=err.access, function=err.function,
            outcome=err.outcome)
        if scheme.policy in (violation_policy.ABORT,
                             violation_policy.DROP_REQUEST):
            self.capture(vm, err)

    # -- postmortems -----------------------------------------------------
    def capture(self, vm, err, reason: Optional[str] = None,
                rid: Optional[int] = None,
                payload: Optional[bytes] = None,
                wid: Optional[int] = None,
                thread=None) -> Optional[Dict[str, object]]:
        """Snapshot a postmortem for ``err`` (bounded, deduplicated)."""
        if getattr(err, "_postmortem_captured", False):
            return None
        try:
            err._postmortem_captured = True
        except AttributeError:   # exceptions without __dict__ (none today)
            pass
        if len(self.postmortems) >= self.max_postmortems:
            self.postmortems_dropped += 1
            return None
        if rid is None:
            rid = getattr(vm, "request_id", None)
        if payload is None:
            payload = getattr(vm, "request_payload", None)
        if wid is None:
            wid = getattr(vm, "worker_id", None)
        report = capture_postmortem(
            vm, err, reason=reason, rid=rid, payload=payload, wid=wid,
            recorder=self.recorder, last_n=self.last_n, thread=thread)
        self.postmortems.append(report)
        self.recorder.record("postmortem", ts=vm.counters.instructions,
                             cat="forensics", rid=rid, wid=wid,
                             trigger=report["trigger"],
                             index=len(self.postmortems) - 1)
        return report

    # -- fleet hooks -----------------------------------------------------
    def fleet_event(self, kind: str, now: int, wid: Optional[int] = None,
                    rid: Optional[int] = None, **detail) -> None:
        """Lifecycle record on the tick clock (dispatch/crash/restart/
        breaker/requeue/expire)."""
        self.recorder.record(kind, ts=now, cat="fleet", rid=rid, wid=wid,
                             **detail)

    def fleet_crash(self, now: int, wid: int, reason: str) -> None:
        """A worker crashed: record it and feed the crash-loop precursor."""
        self.fleet_event("worker_crash", now, wid=wid, reason=reason)
        self.monitor.on_crash(now, wid)

    # -- export ----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "events_recorded": self.recorder.total,
            "events_retained": len(self.recorder),
            "events_dropped": self.recorder.dropped,
            "postmortems": len(self.postmortems),
            "postmortems_dropped": self.postmortems_dropped,
            "alerts": self.monitor.summary(),
        }

    def write_log(self, path: str) -> None:
        """Dump the flight recorder: JSONL for ``*.jsonl``, text else."""
        if path.endswith(".jsonl"):
            text = self.recorder.to_jsonl()
        else:
            text = self.recorder.render_text()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


#: Process-wide default forensics, set by CLI flags (``--log-out``); the
#: harness falls back to it when no explicit Forensics is passed.
_default: Optional[Forensics] = None


def set_default(forensics: Optional[Forensics]) -> None:
    global _default
    _default = forensics


def get_default() -> Optional[Forensics]:
    return _default


__all__ = [
    "AnomalyMonitor",
    "CrashLoopPrecursorDetector",
    "EPCThrashDetector",
    "EventRecord",
    "FlightRecorder",
    "Forensics",
    "LatencyRegressionDetector",
    "MAX_POSTMORTEMS",
    "POSTMORTEM_SCHEMA",
    "QueueDepthDetector",
    "capture_postmortem",
    "capture_stack",
    "decode_pointer",
    "get_default",
    "render_postmortem",
    "set_default",
]
