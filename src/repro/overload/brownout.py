"""Brownout: priority shedding driven by the forensics pressure signal.

A brownout is partial degradation on purpose: instead of letting every
class of traffic share the misery of a saturated fleet, the controller
watches the same anomaly detectors the forensics subsystem ships
(:class:`repro.forensics.anomaly.EPCThrashDetector` for paging pressure,
:class:`repro.forensics.anomaly.QueueDepthDetector` for queueing
pressure) and raises a shed *level* while either is alerting:

* level 0 — healthy, nothing shed;
* level 1 — one detector alerting: shed ``sheddable`` traffic;
* level 2 — both alerting (queueing *and* EPC thrash): also shed
  ``normal`` traffic.

``critical`` is never shed at any level; it can only be rejected by the
admission gate's deadline math.  The detectors' built-in hysteresis
(re-arm at half threshold) is what de-flaps the level — the controller
itself is a pure function of their ``alerting`` flags, so it adds no
state that could drift between identical runs.
"""

from __future__ import annotations

from typing import Dict

from repro.forensics.anomaly import EPCThrashDetector, QueueDepthDetector

#: Shed order, first-to-go first.  Level N sheds SHED_ORDER[:N].
SHED_ORDER = ("sheddable", "normal")


class BrownoutController:
    """Maps detector pressure onto a shed level for the admission gate."""

    def __init__(self, queue_window: int = 8, queue_depth: int = 24,
                 epc_window: int = 16, epc_faults_per_tick: int = 200):
        self.queue = QueueDepthDetector(window=queue_window,
                                        depth_threshold=queue_depth)
        self.epc = EPCThrashDetector(window=epc_window,
                                     faults_per_tick=epc_faults_per_tick)
        self.level = 0
        self.max_level = 0
        self.transitions = 0
        self.ticks_at_level: Dict[int, int] = {0: 0, 1: 0, 2: 0}

    def observe(self, now: int, queue_depth: int,
                epc_faults_total: int) -> None:
        """Per-tick pressure sample; recomputes the shed level."""
        self.queue.observe(now, queue_depth)
        self.epc.observe(now, epc_faults_total)
        pressure = int(self.queue.alerting) + int(self.epc.alerting)
        level = min(pressure, len(SHED_ORDER))
        if level != self.level:
            self.transitions += 1
            self.level = level
            if level > self.max_level:
                self.max_level = level
        self.ticks_at_level[self.level] += 1

    def sheds(self, priority: str) -> bool:
        """Is this class currently browned out?"""
        return priority in SHED_ORDER[:self.level]

    def summary(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "max_level": self.max_level,
            "transitions": self.transitions,
            "ticks_at_level": {str(k): self.ticks_at_level[k]
                               for k in sorted(self.ticks_at_level)},
        }
