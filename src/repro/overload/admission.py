"""Deadline-aware admission control for fleet ingress queues.

The gate answers one question at enqueue time: *can this request still be
served inside its deadline if it joins the line?*  The estimate is the
classic ``queue depth x expected service time`` — service time is a
per-scheme EWMA of observed ticks-per-request, so a heavily-instrumented
scheme (longer service time) saturates at a lower arrival rate and the
gate starts rejecting earlier, exactly tracking the paper's overhead
ordering.  Rejected requests cost the enclave nothing: they terminate
with a distinct ``rejected`` status at the balancer's front door instead
of timing out after queueing (and then wasting service cycles on a
client that already gave up).

Two gates share the estimator:

* the **offer gate** (system-wide): at arrival, estimated wait =
  ``in_system / alive_workers * ewma`` against the full deadline;
* the **assign gate** (per-worker): when a request is bound to one
  worker's queue, estimated wait = ``outstanding(worker) * ewma``
  against the deadline *minus the ticks already spent waiting*.

A :class:`repro.overload.brownout.BrownoutController` (protected mode
only) adds class-based shedding on top: under sustained pressure the
sheddable class is rejected first, then normal; critical traffic is
never browned out and only ever rejected by the deadline math.
"""

from __future__ import annotations

from typing import Dict, Optional

REJECT_DEADLINE = "deadline"
REJECT_SHED = "shed"

#: Per-class fraction of the deadline a request may spend waiting before
#: the gate turns it away.  Lower classes get less headroom, so under
#: pressure the deadline math rejects sheddable traffic first and the
#: queue space it would have occupied is left for critical requests —
#: capacity reservation by deadline scaling, without explicit quotas.
CLASS_HEADROOM = {"critical": 1.0, "normal": 0.75, "sheddable": 0.5}


class ServiceEstimator:
    """EWMA of per-request service time in ticks, per scheme.

    Starts from a prior so the gate works before the first completion;
    ``alpha`` weights fresh samples.  Pure float arithmetic on
    deterministic inputs — two identical campaigns see identical
    estimates at every tick.
    """

    __slots__ = ("prior_ticks", "alpha", "value", "samples")

    def __init__(self, prior_ticks: float = 2.0, alpha: float = 0.25):
        self.prior_ticks = prior_ticks
        self.alpha = alpha
        self.value = float(prior_ticks)
        self.samples = 0

    def observe(self, service_ticks: int) -> None:
        sample = float(max(1, service_ticks))
        self.value += self.alpha * (sample - self.value)
        self.samples += 1

    def estimate(self) -> float:
        return self.value


class AdmissionController:
    """The admission gate threaded into :class:`repro.fleet.Balancer`.

    ``enabled=False`` builds the accounting-only variant used by the
    ``naive`` campaign mode: priorities and the estimator are tracked
    (so reports can show what the gate *would* have known) but both
    gates admit everything.
    """

    def __init__(self, scheme: str, deadline_ticks: int,
                 enabled: bool = True, brownout=None,
                 estimator: Optional[ServiceEstimator] = None,
                 telemetry=None, forensics=None):
        self.scheme = scheme
        self.deadline_ticks = deadline_ticks
        self.enabled = enabled
        self.brownout = brownout
        self.estimator = estimator or ServiceEstimator()
        self.telemetry = telemetry \
            if (telemetry is not None and telemetry.enabled) else None
        self.forensics = forensics
        self.admitted = 0
        self.rejected_by_reason: Dict[str, int] = {
            REJECT_DEADLINE: 0, REJECT_SHED: 0}
        self.rejected_by_class: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def admit_offer(self, request, in_system: int, alive_workers: int,
                    now: int) -> Optional[str]:
        """Front-door gate at arrival; None admits, else a reject reason."""
        if not self.enabled:
            return None
        if self.brownout is not None \
                and self.brownout.sheds(request.priority):
            return REJECT_SHED
        workers = max(1, alive_workers)
        est_wait = (in_system / workers) * self.estimator.estimate()
        budget = self.deadline_ticks \
            * CLASS_HEADROOM.get(request.priority, 1.0)
        if est_wait > budget:
            return REJECT_DEADLINE
        self.admitted += 1
        return None

    def admit_assign(self, request, outstanding: int,
                     now: int) -> Optional[str]:
        """Per-worker gate when the balancer binds a request to a queue."""
        if not self.enabled:
            return None
        budget = self.deadline_ticks \
            * CLASS_HEADROOM.get(request.priority, 1.0)
        remaining = budget - (now - request.arrival)
        est_wait = outstanding * self.estimator.estimate()
        if est_wait > remaining:
            return REJECT_DEADLINE
        return None

    # ------------------------------------------------------------------
    def on_served(self, service_ticks: int) -> None:
        self.estimator.observe(service_ticks)

    def on_reject(self, request, reason: str, now: int) -> None:
        self.rejected_by_reason[reason] = \
            self.rejected_by_reason.get(reason, 0) + 1
        cls = request.priority
        self.rejected_by_class[cls] = self.rejected_by_class.get(cls, 0) + 1
        if self.telemetry is not None:
            self.telemetry.overload_event(f"reject_{reason}", now,
                                          priority=cls)
        if self.forensics is not None:
            self.forensics.record(
                "admission_reject", ts=now, cat="overload", rid=request.rid,
                priority=cls, reason=reason)

    def observe_tick(self, now: int, queue_depth: int,
                     epc_faults_total: int) -> None:
        """Per-tick pressure feed (drives the brownout detectors)."""
        if self.brownout is not None:
            self.brownout.observe(now, queue_depth, epc_faults_total)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scheme": self.scheme,
            "enabled": self.enabled,
            "deadline_ticks": self.deadline_ticks,
            "ewma_service_ticks": round(self.estimator.estimate(), 3),
            "service_samples": self.estimator.samples,
            "admitted": self.admitted,
            "rejected": {k: self.rejected_by_reason[k]
                         for k in sorted(self.rejected_by_reason)},
            "rejected_by_class": {k: self.rejected_by_class[k]
                                  for k in sorted(self.rejected_by_class)},
        }
        if self.brownout is not None:
            out["brownout"] = self.brownout.summary()
        return out
