"""``repro.overload`` — admission control, retry budgets, brownout.

The fleet's saturation behaviour is where SGXBounds' pitch actually
cashes out: a scheme's instrumentation overhead sets its per-request
service time, which sets the arrival rate past which queues grow without
bound.  Naive fleets fail *metastably* there — clients retry timeouts,
retries amplify offered load, and the overload outlives whatever
triggered it.  This package is the protection layer:

* :mod:`repro.overload.admission` — deadline-aware admission at the
  ingress queue: a request whose estimated queue wait (depth x the
  scheme's EWMA service ticks) exceeds its remaining deadline is
  rejected at enqueue with a distinct ``REJECTED`` outcome instead of
  timing out after consuming enclave cycles;
* :mod:`repro.overload.brownout` — a pressure signal built from the
  EPC-fault-rate and queue-depth anomaly detectors
  (:mod:`repro.forensics.anomaly`) that sheds low priority classes
  first (sheddable, then normal; critical is never browned out);
* :mod:`repro.overload.budget` — client-side adaptive retry budgets (a
  token bucket per traffic class, refilled by successes) replacing the
  unbounded retry-on-timeout loop, plus the client swarm that decides
  retry-vs-give-up for every terminal outcome.

Campaigns opt in through :attr:`repro.fleet.campaign.CampaignConfig.
overload`: ``"off"`` (default) constructs none of this and is
byte-identical to the subsystem being absent; ``"naive"`` threads
priority classes and goodput accounting through the fleet but keeps the
unprotected behaviour (no gate, no budget, abandoned requests rot in the
queues and still consume enclave cycles — the congestion-collapse
baseline); ``"protected"`` enables the full gate + brownout + budgeted
retries.  Everything is priced on the simulated clock and derives from
the campaign seed, so overload sweeps are byte-identical per seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.overload.admission import (
    REJECT_DEADLINE,
    REJECT_SHED,
    AdmissionController,
    ServiceEstimator,
)
from repro.overload.brownout import BrownoutController
from repro.overload.budget import ClientSwarm, RetryBudget

#: Campaign overload modes (CampaignConfig.overload).
OFF = "off"
NAIVE = "naive"
PROTECTED = "protected"
MODES = (OFF, NAIVE, PROTECTED)

#: Priority classes, highest first — brownout sheds from the right.
PRIORITIES = ("critical", "normal", "sheddable")

#: Default traffic mix when a campaign enables overload accounting but
#: does not specify one: 20% critical, 60% normal, 20% sheddable.
DEFAULT_MIX: Tuple[Tuple[str, int], ...] = (
    ("critical", 2), ("normal", 6), ("sheddable", 2))


def priority_pattern(
        mix: Tuple[Tuple[str, int], ...] = ()) -> Tuple[str, ...]:
    """Expand a ``((class, weight), ...)`` mix into the deterministic
    assignment cycle: request ``rid`` gets ``pattern[rid % len]``."""
    mix = mix or DEFAULT_MIX
    pattern = []
    for cls, weight in mix:
        if cls not in PRIORITIES:
            raise ValueError(f"unknown priority class {cls!r}; "
                             f"expected one of {PRIORITIES}")
        if weight < 0:
            raise ValueError(f"negative weight for class {cls!r}")
        pattern.extend([cls] * weight)
    if not pattern:
        raise ValueError("priority mix expands to an empty pattern")
    return tuple(pattern)


class OverloadControls:
    """The per-campaign bundle: admission gate + client swarm + pattern."""

    __slots__ = ("mode", "admission", "swarm", "pattern")

    def __init__(self, mode: str, admission: AdmissionController,
                 swarm: ClientSwarm, pattern: Tuple[str, ...]):
        self.mode = mode
        self.admission = admission
        self.swarm = swarm
        self.pattern = pattern

    def priority(self, rid: int) -> str:
        return self.pattern[rid % len(self.pattern)]

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "admission": self.admission.summary(),
            "client": self.swarm.summary(),
        }


def build_controls(mode: str, scheme: str, deadline_ticks: int,
                   priority_mix: Tuple[Tuple[str, int], ...] = (),
                   client_retries: int = 3, retry_refill: float = 0.1,
                   retry_burst: float = 4.0, telemetry=None,
                   forensics=None) -> Optional[OverloadControls]:
    """Construct the overload layer for one campaign (None for ``off``)."""
    if mode == OFF:
        return None
    if mode not in MODES:
        raise ValueError(f"unknown overload mode {mode!r}; "
                         f"expected one of {MODES}")
    protected = mode == PROTECTED
    brownout = BrownoutController() if protected else None
    admission = AdmissionController(
        scheme, deadline_ticks, enabled=protected, brownout=brownout,
        telemetry=telemetry, forensics=forensics)
    swarm = ClientSwarm(budgeted=protected, max_retries=client_retries,
                        refill_per_success=retry_refill, burst=retry_burst)
    return OverloadControls(mode, admission, swarm,
                            priority_pattern(priority_mix))


__all__ = [
    "AdmissionController",
    "BrownoutController",
    "ClientSwarm",
    "DEFAULT_MIX",
    "MODES",
    "NAIVE",
    "OFF",
    "OverloadControls",
    "PRIORITIES",
    "PROTECTED",
    "REJECT_DEADLINE",
    "REJECT_SHED",
    "RetryBudget",
    "ServiceEstimator",
    "build_controls",
    "priority_pattern",
]
