"""Client-side adaptive retry budgets.

The metastable-failure amplifier is the client: a fleet at 1.1x capacity
with retry-on-timeout clients sees *more* than 1.1x offered load,
because every timed-out request comes back as a retry — and the retries
time out too.  The classic fix (Google SRE book ch. 21, AWS "retries
with token buckets") is to make retries a *budgeted* resource: each
success deposits a fraction of a token, each retry spends a whole one,
so the retry rate is capped at ``refill_per_success`` times the success
rate and collapses to zero when nothing succeeds — precisely when
retries are most harmful.

:class:`ClientSwarm` models the whole client population for one
campaign.  It is deliberately status-driven: only ``failed`` terminals
(timeouts/expiries — the ambiguous "maybe it would have worked" case)
are retried; ``error`` replies are the application saying no (a retry
would deterministically fail again) and ``rejected`` replies are the
fleet saying *stop sending* — retrying those would defeat the gate.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Terminal statuses a client will consider retrying.
RETRYABLE = ("failed",)


class RetryBudget:
    """Token bucket refilled by successes, spent by retries."""

    __slots__ = ("refill_per_success", "burst", "tokens", "spent", "denied")

    def __init__(self, refill_per_success: float = 0.1,
                 burst: float = 4.0):
        self.refill_per_success = refill_per_success
        self.burst = burst
        self.tokens = float(burst)    # start full: cold fleets may hiccup
        self.spent = 0
        self.denied = 0

    def try_spend(self) -> bool:
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False

    def on_success(self) -> None:
        self.tokens = min(self.burst,
                          self.tokens + self.refill_per_success)


class ClientSwarm:
    """Retry policy for every client in a campaign, one bucket per class.

    ``budgeted=False`` is the naive swarm: unconditional retry of every
    ``failed`` terminal up to ``max_retries`` — the congestion-collapse
    baseline.  ``budgeted=True`` gates each retry through the class's
    token bucket and refills it on every success of that class.
    """

    def __init__(self, budgeted: bool = True, max_retries: int = 3,
                 refill_per_success: float = 0.1, burst: float = 4.0):
        self.budgeted = budgeted
        self.max_retries = max_retries
        self.refill_per_success = refill_per_success
        self.burst = burst
        self.budgets: Dict[str, RetryBudget] = {}
        self.retries = 0
        self.gave_up = 0
        self.successes = 0

    def _budget(self, priority: str) -> RetryBudget:
        budget = self.budgets.get(priority)
        if budget is None:
            budget = RetryBudget(self.refill_per_success, self.burst)
            self.budgets[priority] = budget
        return budget

    def on_terminal(self, request, now: int):
        """Client-side reaction to a terminal outcome.

        Returns a fresh :class:`repro.fleet.balancer.Request` to re-offer
        (a *client* retry: new arrival stamp, same rid/payload/priority)
        or ``None`` when the client accepts the outcome.
        """
        if request.status == "served":
            self.successes += 1
            if self.budgeted:
                self._budget(request.priority).on_success()
            return None
        if request.status not in RETRYABLE:
            return None
        if request.client_retries >= self.max_retries:
            self.gave_up += 1
            return None
        if self.budgeted and not self._budget(request.priority).try_spend():
            self.gave_up += 1
            return None
        self.retries += 1
        from repro.fleet.balancer import Request
        fresh = Request(request.rid, request.payload, now,
                        priority=request.priority,
                        client_retries=request.client_retries + 1,
                        first_arrival=request.first_arrival)
        return fresh

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "budgeted": self.budgeted,
            "max_retries": self.max_retries,
            "retries": self.retries,
            "gave_up": self.gave_up,
        }
        if self.budgeted:
            out["budgets"] = {
                cls: {"tokens": round(b.tokens, 3), "spent": b.spent,
                      "denied": b.denied}
                for cls, b in sorted(self.budgets.items())}
        return out
