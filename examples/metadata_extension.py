#!/usr/bin/env python3
"""Extending SGXBounds through the metadata-management API (paper §4.3).

SGXBounds' memory layout — metadata appended right after each object —
generalizes: extra 4-byte items can follow the lower bound, managed via
the on_create / on_access / on_delete hooks of Table 2.  This example
builds the paper's own suggestion, a probabilistic double-free guard
("an additional metadata item acting as a 'magic number'"), plus a small
allocation profiler, without touching the instrumentation pass.

Run:  python examples/metadata_extension.py
"""

from repro.core import DoubleFreeGuard, MetadataManager, SGXBoundsScheme
from repro.errors import DoubleFree
from repro.minic import compile_source
from repro.vm import VM

BUGGY = r"""
int main() {
    char *a = (char*)malloc(64);
    char *b = (char*)malloc(64);
    a[0] = 'x';
    free(a);
    free(b);
    free(a);      // double free!
    return 0;
}
"""

HONEST = r"""
int main() {
    int total = 0;
    for (int i = 0; i < 20; i++) {
        int *block = (int*)malloc((i % 4 + 1) * 32);
        block[0] = i;
        total += block[0];
        free(block);
    }
    return total;
}
"""


def run(source, manager):
    scheme = SGXBoundsScheme(metadata=manager)
    module = scheme.instrument(compile_source(source)).finalize()
    vm = VM(scheme=scheme)
    vm.load(module)
    return vm.run("main"), vm


def main():
    # 1. The double-free guard from §4.3.
    manager = MetadataManager()
    guard = DoubleFreeGuard(manager)
    print("double-free guard (magic-number metadata item):")
    try:
        run(BUGGY, manager)
        print("  MISSED the double free!")
    except DoubleFree as err:
        print(f"  detected: {err}")

    # 2. A custom extension: per-object-type allocation statistics.
    manager = MetadataManager()
    stats = {"created": 0, "deleted": 0, "bytes": 0}

    @manager.on_create
    def _count(vm, base, size, objtype, tagged):
        if objtype == "heap":
            stats["created"] += 1
            stats["bytes"] += size

    @manager.on_delete
    def _gone(vm, tagged):
        stats["deleted"] += 1

    result, _ = run(HONEST, manager)
    print(f"\nallocation profiler hook (result={result}):")
    print(f"  heap objects created: {stats['created']}, "
          f"freed: {stats['deleted']}, total bytes: {stats['bytes']}")
    assert stats["created"] == stats["deleted"] == 20


if __name__ == "__main__":
    main()
