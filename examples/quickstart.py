#!/usr/bin/env python3
"""Quickstart: protect a C program with SGXBounds inside a simulated enclave.

Compiles a small MiniC program containing an off-by-one heap overflow,
runs it four ways — unprotected, under SGXBounds (fail-stop), under
SGXBounds with boundless memory, and under AddressSanitizer — and shows
what each one sees.

Run:  python examples/quickstart.py
"""

from repro.asan import ASanScheme
from repro.core import SGXBoundsScheme
from repro.errors import BoundsViolation
from repro.minic import compile_source
from repro.vm import VM

PROGRAM = r"""
int main() {
    int *prices = (int*)malloc(16 * sizeof(int));
    int *basket = (int*)malloc(16 * sizeof(int));
    basket[0] = 9999;                      // our neighbour's data

    for (int i = 0; i <= 16; i++)          // classic off-by-one: i <= 16
        prices[i] = 100 + i;

    int total = 0;
    for (int i = 0; i < 16; i++) total += prices[i];
    printf("total=%d neighbour=%d\n", total, basket[0]);
    return basket[0];                      // was the neighbour corrupted?
}
"""


def run(label, scheme):
    module = compile_source(PROGRAM, "quickstart")
    module = scheme.instrument(module) if scheme else module.clone()
    module.finalize()
    vm = VM(scheme=scheme)
    vm.load(module)
    try:
        result = vm.run("main")
    except BoundsViolation as err:
        print(f"{label:22s} DETECTED: {err}")
        return
    counters = vm.enclave.finalize()
    neighbour = "corrupted!" if result != 9999 else "intact"
    print(f"{label:22s} ran to completion, neighbour {neighbour} "
          f"({counters.instructions} instructions, {counters.cycles} cycles)")


def main():
    print("off-by-one heap overflow under four configurations:\n")
    run("native SGX", None)
    run("SGXBounds (fail-stop)", SGXBoundsScheme())
    run("SGXBounds (boundless)", SGXBoundsScheme(boundless=True))
    run("AddressSanitizer", ASanScheme())
    print("""
What happened:
 * native SGX silently corrupts the adjacent object (the enclave cannot help);
 * SGXBounds detects the 11th store via the tagged pointer's upper bound;
 * with boundless memory (paper §4.2) the overflow is redirected to an
   overlay chunk — the program finishes AND the neighbour is intact;
 * AddressSanitizer detects it too, via the poisoned redzone.""")


if __name__ == "__main__":
    main()
