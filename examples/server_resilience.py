#!/usr/bin/env python3
"""Server resilience: CVE-2011-4971 (Memcached) and CVE-2013-2028 (Nginx).

Reproduces the §7 security evaluations: a malicious request is mixed into
honest traffic against each in-enclave server, under every protection
configuration.  Fail-stop schemes kill the server (availability lost);
SGXBounds with boundless memory drops the poisoned request and keeps
serving — the paper's availability argument.

Run:  python examples/server_resilience.py
"""

from repro.harness.runner import run_server
from repro.workloads.apps import memcached, nginx


def drive(app_label, mod, honest, attack):
    print(f"\n--- {app_label}: {len(honest)} honest requests + 1 attack ---")
    requests = honest[:len(honest) // 2] + [attack] + honest[len(honest) // 2:]
    for label, scheme_name, kwargs in (
            ("native SGX", "native", None),
            ("SGXBounds (fail-stop)", "sgxbounds", None),
            ("SGXBounds (boundless)", "sgxbounds", {"boundless": True}),
            ("AddressSanitizer", "asan", None),
            ("Intel MPX", "mpx", None)):
        result = run_server(mod.SOURCE, [requests], scheme_name,
                            len(requests), threads=1,
                            scheme_kwargs=kwargs, name=app_label)
        if result.ok:
            print(f"  {label:24s} served {result.result}/{len(requests)} "
                  f"requests (attack absorbed)")
        else:
            print(f"  {label:24s} server DOWN after the attack "
                  f"({result.crashed})")


def main():
    drive("memcached (CVE-2011-4971)", memcached,
          memcached.workload(24), memcached.cve_2011_4971_request())
    drive("nginx (CVE-2013-2028)", nginx,
          nginx.workload(24), nginx.cve_2013_2028_request())
    print("""
Paper §7, reproduced: every scheme detects both CVEs; fail-stop halts the
server, while SGXBounds' boundless memory turns each attack into a dropped
or neutered request and the servers keep running.""")


if __name__ == "__main__":
    main()
