#!/usr/bin/env python3
"""Server resilience: CVE-2011-4971 (Memcached) and CVE-2013-2028 (Nginx).

Reproduces the §7 security evaluations: a malicious request is mixed into
honest traffic against each in-enclave server, under every protection
configuration.  Fail-stop schemes kill the server (availability lost);
SGXBounds with boundless memory drops the poisoned request and keeps
serving — the paper's availability argument.

Run:  python examples/server_resilience.py
"""

from repro.harness.runner import run_server
from repro.workloads.apps import memcached, nginx


def drive(app_label, mod, honest, attack):
    print(f"\n--- {app_label}: {len(honest)} honest requests + 1 attack ---")
    requests = honest[:len(honest) // 2] + [attack] + honest[len(honest) // 2:]
    for label, scheme_name, kwargs, policy in (
            ("native SGX", "native", None, None),
            ("SGXBounds (fail-stop)", "sgxbounds", None, None),
            ("SGXBounds (boundless)", "sgxbounds", {"boundless": True}, None),
            ("SGXBounds (drop-request)", "sgxbounds", None, "drop-request"),
            ("SGXBounds (audit log)", "sgxbounds", None, "log-and-continue"),
            ("AddressSanitizer", "asan", None, None),
            ("Intel MPX", "mpx", None, None)):
        result = run_server(mod.SOURCE, [requests], scheme_name,
                            len(requests), threads=1,
                            scheme_kwargs=kwargs, name=app_label,
                            policy=policy)
        dropped = result.resilience.get("dropped_requests", 0)
        if result.ok and dropped:
            responses = result.resilience["net"]["responses"]
            print(f"  {label:24s} served {responses}/{len(requests)} "
                  f"requests ({dropped} dropped, server alive)")
        elif result.ok:
            print(f"  {label:24s} served {result.result}/{len(requests)} "
                  f"requests (attack absorbed)")
        else:
            print(f"  {label:24s} server DOWN after the attack "
                  f"({result.crashed})")


def main():
    drive("memcached (CVE-2011-4971)", memcached,
          memcached.workload(24), memcached.cve_2011_4971_request())
    drive("nginx (CVE-2013-2028)", nginx,
          nginx.workload(24), nginx.cve_2013_2028_request())
    print("""
Paper §7, reproduced: every scheme detects both CVEs; fail-stop halts the
server, while SGXBounds' boundless memory turns each attack into a dropped
or neutered request and the servers keep running.  The drop-request policy
achieves the same availability by rolling the faulting thread back to its
net_recv checkpoint; audit mode (log-and-continue) records every violation
but offers no protection — compare them with:

    python -m repro chaos --policy drop-request --fault-rate 0.2""")


if __name__ == "__main__":
    main()
