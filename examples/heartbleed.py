#!/usr/bin/env python3
"""Heartbleed inside the enclave (paper §7, Apache case study).

Drives the Apache-like server with honest traffic plus a malicious
heartbeat that claims 2048 bytes for an 8-byte payload.  The response
would leak the session secret living right after the request buffer:

 * native SGX      — the enclave encrypts the leak on the wire, but the
   *server itself* happily sends the secret to the attacker;
 * SGXBounds       — the over-read trips the memcpy wrapper's bound check;
 * boundless mode  — the request is served with zeros in place of the
   out-of-bounds bytes: no leak AND no downtime (failure-oblivious, §4.2).

Run:  python examples/heartbleed.py
"""

from repro.core import SGXBoundsScheme
from repro.errors import BoundsViolation
from repro.harness.runner import run_server
from repro.workloads.apps import apache

SECRET_MARK = b"SSSS"


def attempt(label, scheme_name, **scheme_kwargs):
    requests = apache.workload(8) + [apache.heartbleed_request()]
    result = run_server(apache.SOURCE, [requests], scheme_name, 9,
                        threads=1, scheme_kwargs=scheme_kwargs or None,
                        name="apache")
    if not result.ok:
        print(f"{label:24s} request blocked: server stopped with "
              f"{result.crashed} (fail-stop)")
        return
    responses = result.net.sent(0)
    leaked = any(SECRET_MARK in response for response in responses)
    served = result.result
    verdict = "SECRET LEAKED to the attacker" if leaked \
        else "no leak (out-of-bounds bytes arrived as zeros)"
    print(f"{label:24s} served {served} requests — {verdict}")


def main():
    print("Heartbleed heartbeat against the in-enclave Apache:\n")
    attempt("native SGX", "native")
    attempt("SGXBounds (fail-stop)", "sgxbounds")
    attempt("SGXBounds (boundless)", "sgxbounds", boundless=True)
    attempt("AddressSanitizer", "asan")
    attempt("Intel MPX", "mpx")
    print("""
The paper's §7 result, reproduced: shielded execution alone does not stop
the leak; all three memory-safety schemes detect it; and SGXBounds'
boundless memory keeps Apache serving while replacing the leaked bytes
with zeros.""")


if __name__ == "__main__":
    main()
