#!/usr/bin/env python3
"""Figure 4, live: the same kernel under each instrumentation pass.

Compiles the paper's array-copy example and prints the IR four ways —
original, AddressSanitizer (shadow check), Intel MPX (bndcl/bndcu +
bounds travel), SGXBounds (tagged-pointer extract + bounds check) — so
you can read the exact analogue of the paper's Figure 4 side by side.

Run:  python examples/instrumentation_tour.py
"""

from repro.asan import ASanScheme
from repro.core import SGXBoundsScheme
from repro.minic import compile_source
from repro.mpx import MPXScheme
from repro.ir import print_function

KERNEL = r"""
int *s[8];
int *d[8];

int copy(int m) {
    for (int i = 0; i < m; i++)
        d[i] = s[i];        // pointer copy: MPX must move bounds too
    return 0;
}
"""


def show(label, scheme):
    module = compile_source(KERNEL, "fig4")
    if scheme is not None:
        module = scheme.instrument(module)
    print(f"\n{'=' * 72}\n(Fig. 4{label}\n{'=' * 72}")
    print(print_function(module.functions["copy"]))


def main():
    show("a) original", None)
    show("b) AddressSanitizer — shadow load + check per access",
         ASanScheme(optimize_safe=False))
    show("c) Intel MPX — bndcl/bndcu checks, bndldx/bndstx move bounds "
         "through the bounds table", MPXScheme(optimize_safe=False))
    show("d) SGXBounds — extract p/UB from the tagged pointer, load LB "
         "from [UB], clamped pointer arithmetic",
         SGXBoundsScheme(optimize_safe=False, optimize_hoist=False))
    print("""
Things to notice (matching the paper's Figure 4 discussion):
 * (c) stores/loads pointer *bounds* alongside every pointer store/load —
   two separate instructions, hence the multithreading race of §4.1;
 * (d) needs no extra action on the pointer copy itself: the upper bound
   travels inside the 64-bit value, and the lower bound lives at [UB].""")


if __name__ == "__main__":
    main()
